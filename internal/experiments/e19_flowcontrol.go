package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"catocs/internal/chaos"
	"catocs/internal/flowcontrol"
	"catocs/internal/group"
	"catocs/internal/multicast"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
	"catocs/internal/wal"
)

// E19 — flow control and graceful degradation under slow consumers.
// §5's resource argument made operational: one member that stays alive
// (timely acks and heartbeats) but consumes its inbound traffic late
// pins every member's stability frontier, so unstable buffers grow
// without bound — and no silence-based failure detector can see it.
//
// The experiment measures the trilemma the paper leaves implicit. With
// no policy, buffer high-water grows linearly with the consumer's lag
// (part 1). With a budget installed, each OverflowPolicy holds memory
// at the budget and pays a different price (part 2): Block trades
// throughput — completion time stretches toward casts×lag/window —
// Shed trades completeness, Spill trades memory for stable-storage
// traffic, and Suspect trades membership, excising the laggard through
// the ordinary view-change machinery so the survivors' buffers drain
// to zero. Part 3 hands the same machinery to the chaos harness:
// randomized slow-consumer episodes under a budget, every episode
// checked by the bounded-memory oracle alongside the ordering oracles.

// E19Point is one measured configuration.
type E19Point struct {
	Mix    string  `json:"mix"`    // "lag-sweep", "policy", or "chaos"
	Policy string  `json:"policy"` // overflow policy name
	LagMs  float64 `json:"lag_ms"` // slow consumer's inbound lag
	Budget int     `json:"budget"` // group budget, messages (0 = unlimited)

	Sent      uint64 `json:"sent"`      // casts offered by the sender
	Delivered uint64 `json:"delivered"` // deliveries at the sender's node

	// StabHighWater is the worst in-memory unstable-buffer occupancy
	// any member saw; the budget bounds it when a policy is active.
	StabHighWater int64 `json:"stab_high_water"`
	HoldbackMax   int64 `json:"holdback_max"`

	Shed     uint64 `json:"shed"`     // casts dropped at admission (Shed)
	Spills   uint64 `json:"spills"`   // messages written to the WAL (Spill)
	Suspects uint64 `json:"suspects"` // accusations fired (Suspect)
	Excised  bool   `json:"excised"`  // laggard removed via view change

	// CompletionMs is when the sender's node delivered its last
	// message — Block's throughput collapse shows up here.
	CompletionMs float64 `json:"completion_ms"`
	// StallP99Ms is the 99th-percentile admission-window stall.
	StallP99Ms float64 `json:"stall_p99_ms"`
	// Episodes and Violations describe the chaos batch row.
	Episodes   int `json:"episodes,omitempty"`
	Violations int `json:"violations,omitempty"`
}

// JSON renders the point as one JSON line for machine consumers.
func (p E19Point) JSON() string {
	b, _ := json.Marshal(p)
	return string(b)
}

// e19Run executes one slow-consumer episode: rank 0 casts every 2ms
// over an atomic causal group of n; node n-1 receives everything lag
// late but stays timely outbound. Suspect episodes additionally run
// membership monitors with heartbeat timeouts too long to see the lag,
// so only the flow-control stall accusation can excise the laggard.
func e19Run(n, casts int, lag time.Duration, budget flowcontrol.Budget, pol flowcontrol.Policy, seed int64) E19Point {
	k := sim.NewKernel(seed)
	k.SetEventLimit(50_000_000)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: time.Millisecond})
	mux := transport.NewMux(net)

	nodes := make([]transport.NodeID, n)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
	}
	var lastDelivery time.Duration
	var delivered uint64
	members := make([]*multicast.Member, n)
	monitors := make([]*group.Monitor, n)
	spillDev := wal.NewDevice()
	for i := range nodes {
		i := i
		cfg := multicast.Config{
			Group: "e19", Ordering: multicast.Causal, Atomic: true,
			Budget: budget, Overflow: pol,
		}
		if pol == flowcontrol.Spill {
			cfg.SpillDevice = spillDev
		}
		if pol == flowcontrol.Suspect {
			cfg.StallTimeout = 200 * time.Millisecond
			cfg.OnSuspect = func(r vclock.ProcessID) { monitors[i].ForceSuspect(r) }
		}
		rank := vclock.ProcessID(i)
		members[i] = multicast.NewMember(mux, nodes, rank, cfg, func(multicast.Delivered) {
			if i == 0 {
				delivered++
				lastDelivery = k.Now()
			}
		})
	}
	if pol == flowcontrol.Suspect {
		for i, m := range members {
			monitors[i] = group.NewMonitor(mux, m, "e19", group.Config{SuspectTimeout: 5 * time.Second})
		}
		for _, mon := range monitors {
			mon.Start()
		}
	}
	net.Slow(nodes[n-1], lag)
	for i := 0; i < casts; i++ {
		i := i
		k.At(time.Duration(i)*2*time.Millisecond, func() {
			members[0].Multicast(fmt.Sprintf("m%d", i), 64)
		})
	}
	k.RunUntil(90 * time.Second)

	pt := E19Point{
		Policy: pol.String(), LagMs: lag.Seconds() * 1000,
		Budget:    budget.MaxMsgs,
		Sent:      uint64(casts),
		Delivered: delivered,
	}
	for _, m := range members {
		if s := m.Stability(); s != nil {
			if v := s.HighWater(); v > pt.StabHighWater {
				pt.StabHighWater = v
			}
			if sp := s.Spill(); sp != nil {
				pt.Spills += sp.Spills()
			}
		}
		if v := m.HoldbackGauge.Max(); v > pt.HoldbackMax {
			pt.HoldbackMax = v
		}
		pt.Shed += uint64(m.ShedCount.Value())
		pt.Suspects += uint64(m.SuspectCount.Value())
	}
	pt.Excised = members[0].Epoch() > 0 && members[0].GroupSize() == n-1
	pt.CompletionMs = lastDelivery.Seconds() * 1000
	pt.StallP99Ms = members[0].AdmissionStall.Quantile(0.99) * 1000
	for _, mon := range monitors {
		if mon != nil {
			mon.Stop()
		}
	}
	for _, m := range members {
		m.Close()
	}
	return pt
}

// RunE19Lags is part 1: no budget, lag swept — the unbounded-growth
// baseline. The buffer high-water tracks lag×send-rate.
func RunE19Lags(n, casts int, lags []time.Duration, seed int64) []E19Point {
	var pts []E19Point
	for _, lag := range lags {
		pt := e19Run(n, casts, lag, flowcontrol.Budget{}, flowcontrol.None, seed)
		pt.Mix = "lag-sweep"
		pts = append(pts, pt)
	}
	return pts
}

// RunE19Policies is part 2: fixed lag and budget, one row per
// overflow policy.
func RunE19Policies(n, casts int, lag time.Duration, budget flowcontrol.Budget, seed int64) []E19Point {
	var pts []E19Point
	for _, pol := range []flowcontrol.Policy{
		flowcontrol.None, flowcontrol.Block, flowcontrol.Shed,
		flowcontrol.Spill, flowcontrol.Suspect,
	} {
		b := budget
		if pol == flowcontrol.None {
			b = flowcontrol.Budget{}
		}
		pt := e19Run(n, casts, lag, b, pol, seed)
		pt.Mix = "policy"
		pts = append(pts, pt)
	}
	return pts
}

// RunE19Chaos is part 3: randomized slow-consumer episodes under a
// budget with the Spill policy (the one policy that admits every cast,
// so the liveness and same-set oracles keep their full force), every
// episode audited by the bounded-memory oracle.
func RunE19Chaos(episodes int, budget flowcontrol.Budget, seed int64) E19Point {
	sum := chaos.RunEpisodes(chaos.RunnerConfig{
		Substrate: "cbcast",
		N:         5,
		Senders:   2,
		MsgsPer:   25,
		Episodes:  episodes,
		Seed:      seed,
		NoFaults:  true,
		Gen: chaos.GenConfig{
			Slows:   2,
			MaxLag:  120 * time.Millisecond,
			Crashes: 1,
		},
		Budget:   budget,
		Overflow: flowcontrol.Spill,
	})
	violations := 0
	for _, f := range sum.Failures {
		violations += len(f.Result.Violations)
	}
	return E19Point{
		Mix: "chaos", Policy: flowcontrol.Spill.String(),
		Budget:        budget.MaxMsgs,
		Sent:          sum.Sent,
		Delivered:     sum.Delivered,
		StabHighWater: sum.StabHighWater,
		HoldbackMax:   sum.MaxHoldback,
		Episodes:      episodes,
		Violations:    violations,
	}
}

// TableE19 runs all three parts and renders them.
func TableE19(n, casts, episodes int, seed int64) *Table {
	budget := flowcontrol.Budget{MaxMsgs: 48}
	t := &Table{
		ID:    "E19",
		Title: "Flow control: bounded buffers and graceful degradation under slow consumers (§5)",
		Claim: "an alive-but-slow consumer grows unbounded buffers that no silence-based detector can see; a budget plus an overflow policy caps memory at a chosen price — throughput (Block), completeness (Shed), stable storage (Spill), or membership (Suspect)",
		Headers: []string{"mix", "policy", "lag ms", "budget", "sent", "delivered", "stab hw",
			"shed", "spills", "excised", "completion ms", "stall p99 ms", "violations"},
	}
	var pts []E19Point
	pts = append(pts, RunE19Lags(n, casts, []time.Duration{
		0, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
	}, seed)...)
	pts = append(pts, RunE19Policies(n, casts, 200*time.Millisecond, budget, seed)...)
	pts = append(pts, RunE19Chaos(episodes, budget, seed))
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{
			pt.Mix, pt.Policy, fmtMs(pt.LagMs / 1000), fmtI(pt.Budget),
			fmtU(pt.Sent), fmtU(pt.Delivered), fmtI(int(pt.StabHighWater)),
			fmtU(pt.Shed), fmtU(pt.Spills), fmt.Sprint(pt.Excised),
			fmtMs(pt.CompletionMs / 1000), fmtMs(pt.StallP99Ms / 1000), fmtI(pt.Violations),
		})
	}
	t.Notes = append(t.Notes,
		"lag-sweep: no budget; one sender at 2ms spacing, last node's inbound deliveries lagged — stability high-water grows ~linearly with lag while the lagged node stays timely outbound (invisible to heartbeat detection)",
		"policy rows: lag 200ms, group budget 48 msgs split into per-sender admission windows; every policy holds stab hw at or under the budget",
		"Block: loses nothing but completion stretches — the admission window advances only at the laggard's pace (§5's blocking cost)",
		"Shed: bounded memory and on-time completion, paid in dropped casts (counted, traced)",
		"Spill: bounded memory, nothing lost — overflow rides the WAL and reloads on NACK",
		"Suspect: the admission stall names the laggard from the stability matrix (phi-accrual detection alone cannot — the laggard's acks are timely); the ordinary view change excises it and survivors drain to zero",
		fmt.Sprintf("chaos: %d randomized slow-consumer episodes (Spill, budget 48) — bounded-memory oracle plus all ordering oracles, zero violations", episodes))
	return t
}
