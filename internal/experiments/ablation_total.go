package experiments

import (
	"time"

	"catocs/internal/metrics"
	"catocs/internal/multicast"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// Ablation: fixed-sequencer vs Skeen-agreement total order. The
// sequencer costs one extra hop through a central member (and loads
// it); the agreement protocol spreads load but needs a propose/commit
// round trip per message. DESIGN.md lists this as a design choice
// worth quantifying.

// AblationTotalPoint is one group size's comparison.
type AblationTotalPoint struct {
	N                int
	SeqMeanMs        float64
	AgreeMeanMs      float64
	CausalTotalMs    float64
	SeqCtrlMsgs      uint64
	AgreeCtrlMsgs    uint64
	SequencerLoadPct float64 // share of all ctrl traffic emitted by the sequencer
}

// RunAblationTotal measures one group size.
func RunAblationTotal(n, msgsPerSender int, seed int64) AblationTotalPoint {
	pt := AblationTotalPoint{N: n}
	for _, ord := range []multicast.Ordering{multicast.TotalSeq, multicast.TotalAgree, multicast.TotalCausal} {
		k := sim.NewKernel(seed)
		k.SetEventLimit(50_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: 2 * time.Millisecond})
		nodes := make([]transport.NodeID, n)
		for i := range nodes {
			nodes[i] = transport.NodeID(i)
		}
		var lat metrics.Histogram
		members := multicast.NewGroup(net, nodes, multicast.Config{Group: "abl", Ordering: ord},
			func(rank vclock.ProcessID) multicast.DeliverFunc {
				return func(d multicast.Delivered) { lat.Observe(d.Latency.Seconds()) }
			})
		for s := 0; s < n; s++ {
			for i := 0; i < msgsPerSender; i++ {
				s, i := s, i
				k.At(time.Duration(i)*5*time.Millisecond+time.Duration(s)*200*time.Microsecond, func() {
					members[s].Multicast(i, 32)
				})
			}
		}
		k.Run()
		var ctrl uint64
		for _, m := range members {
			ctrl += m.CtrlMsgs.Value()
		}
		switch ord {
		case multicast.TotalSeq:
			pt.SeqMeanMs = lat.Mean() * 1000
			pt.SeqCtrlMsgs = ctrl
			if ctrl > 0 {
				pt.SequencerLoadPct = 100 * float64(members[0].CtrlMsgs.Value()) / float64(ctrl)
			}
		case multicast.TotalAgree:
			pt.AgreeMeanMs = lat.Mean() * 1000
			pt.AgreeCtrlMsgs = ctrl
		case multicast.TotalCausal:
			pt.CausalTotalMs = lat.Mean() * 1000
		}
	}
	return pt
}

// TableAblationTotal sweeps group size.
func TableAblationTotal(sizes []int, msgsPerSender int, seed int64) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: total order via fixed sequencer vs Skeen agreement",
		Claim:   "design-choice quantification (DESIGN.md): central-hop latency and sequencer load vs per-message agreement round",
		Headers: []string{"N", "seq mean ms", "causal-total ms", "agree mean ms", "seq ctrl msgs", "agree ctrl msgs", "sequencer load %"},
	}
	for _, n := range sizes {
		pt := RunAblationTotal(n, msgsPerSender, seed)
		t.Rows = append(t.Rows, []string{
			fmtI(pt.N), fmtF(pt.SeqMeanMs), fmtF(pt.CausalTotalMs), fmtF(pt.AgreeMeanMs),
			fmtU(pt.SeqCtrlMsgs), fmtU(pt.AgreeCtrlMsgs), fmtF(pt.SequencerLoadPct),
		})
	}
	return t
}
