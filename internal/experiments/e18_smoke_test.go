package experiments

import (
	"testing"
	"time"
)

// CI-sized E18: small episode counts, but the assertions are the real
// acceptance criteria — zero invariant violations under the random
// fault mix, a deterministic digest, and a partition unavailability
// window that tracks the scripted outage.
func TestE18Smoke(t *testing.T) {
	for _, sub := range []string{"cbcast", "abcast", "scalecast"} {
		pts := RunE18(sub, 3, 5, 20, 1)
		if len(pts) != 2 {
			t.Fatalf("%s: %d points", sub, len(pts))
		}
		random, part := pts[0], pts[1]
		if random.Violations != 0 {
			t.Fatalf("%s: %d violations under the random fault mix", sub, random.Violations)
		}
		if part.Violations != 0 {
			t.Fatalf("%s: %d violations under the scripted partition", sub, part.Violations)
		}
		if random.Sent == 0 || random.Delivered == 0 || random.Drops == 0 {
			t.Fatalf("%s: episode injected no faults or moved no traffic: %+v", sub, random)
		}
		// The isolated node's delivery silence must show (most of) the
		// 250ms outage; detection lag can only lengthen it, message
		// spacing shortens the measurable floor slightly.
		if got := time.Duration(part.UnavailMax * float64(time.Second)); got < e18PartitionOutage*4/5 {
			t.Fatalf("%s: partition unavailability %s does not reflect the %s outage",
				sub, got, e18PartitionOutage)
		}
		again := RunE18(sub, 3, 5, 20, 1)
		if again[0].Digest != random.Digest || again[1].Digest != part.Digest {
			t.Fatalf("%s: digests differ across identical runs", sub)
		}
	}
}
