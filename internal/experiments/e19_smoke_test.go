package experiments

import (
	"testing"
	"time"

	"catocs/internal/flowcontrol"
)

// CI-sized E19: the real acceptance criteria at small parameters. The
// no-policy baseline must show unbounded growth under a slow consumer,
// every policy must hold the buffer at the budget, and each policy
// must pay exactly its advertised price — Block completes late but
// loses nothing, Shed drops counted casts, Spill rides the WAL,
// Suspect excises the laggard and drains the survivors. The Makefile's
// slow-consumer-smoke target runs this test; a regression that lets a
// slow consumer grow buffers past the budget exits 1 here.
func TestE19Smoke(t *testing.T) {
	const (
		n      = 5
		casts  = 60
		lag    = 200 * time.Millisecond
		budget = 48
	)

	// Unbounded baseline: the lag sweep's high-water must grow with lag
	// and overrun the budget a policy would have enforced.
	lags := RunE19Lags(n, casts, []time.Duration{0, lag}, 1)
	if lags[0].StabHighWater >= lags[1].StabHighWater {
		t.Fatalf("no growth under lag: hw %d (lag 0) vs %d (lag %s)",
			lags[0].StabHighWater, lags[1].StabHighWater, lag)
	}
	if lags[1].StabHighWater <= budget {
		t.Fatalf("unbounded baseline hw %d never exceeded the budget %d — episode too gentle",
			lags[1].StabHighWater, budget)
	}

	pts := RunE19Policies(n, casts, lag, flowcontrol.Budget{MaxMsgs: budget}, 1)
	byPolicy := map[string]E19Point{}
	for _, pt := range pts {
		byPolicy[pt.Policy] = pt
	}
	none := byPolicy["none"]
	for _, pol := range []string{"block", "shed", "spill", "suspect"} {
		pt := byPolicy[pol]
		if pt.StabHighWater > budget {
			t.Fatalf("%s: stab high-water %d exceeds budget %d", pol, pt.StabHighWater, budget)
		}
		if pt.StabHighWater >= none.StabHighWater {
			t.Fatalf("%s: hw %d not below the no-policy baseline %d", pol, pt.StabHighWater, none.StabHighWater)
		}
	}
	if block := byPolicy["block"]; block.Delivered != casts {
		t.Fatalf("block lost casts: delivered %d/%d", block.Delivered, casts)
	} else if block.CompletionMs < 2*none.CompletionMs {
		t.Fatalf("block shows no throughput collapse: completion %.0fms vs baseline %.0fms",
			block.CompletionMs, none.CompletionMs)
	}
	if shed := byPolicy["shed"]; shed.Shed == 0 {
		t.Fatal("shed dropped nothing")
	} else if shed.Delivered+shed.Shed != casts {
		t.Fatalf("shed accounting: delivered %d + shed %d != %d", shed.Delivered, shed.Shed, casts)
	}
	if spill := byPolicy["spill"]; spill.Spills == 0 {
		t.Fatal("spill wrote nothing to the WAL")
	} else if spill.Delivered != casts {
		t.Fatalf("spill lost casts: delivered %d/%d", spill.Delivered, casts)
	}
	if sus := byPolicy["suspect"]; !sus.Excised {
		t.Fatal("suspect never excised the laggard")
	} else if sus.Delivered != casts {
		t.Fatalf("suspect survivors lost casts: delivered %d/%d", sus.Delivered, casts)
	}

	// Chaos batch: randomized slow-consumer episodes with the
	// bounded-memory oracle armed.
	ch := RunE19Chaos(5, flowcontrol.Budget{MaxMsgs: budget}, 1)
	if ch.Violations != 0 {
		t.Fatalf("chaos batch: %d violations", ch.Violations)
	}
	if ch.StabHighWater == 0 || ch.StabHighWater > budget {
		t.Fatalf("chaos batch stab high-water %d (budget %d)", ch.StabHighWater, budget)
	}
}
