package experiments

import (
	"strings"
	"testing"
)

// TestE20Smoke runs a small grid of both arms and checks the
// structural guarantees the table relies on: zero oracle violations,
// matching relevant-delivery counts between arms at the same k (the
// destination draw is shared), and the load separation that motivates
// genuine multicast — the big group makes every node process every
// cast while mgcast only burdens destinations.
func TestE20Smoke(t *testing.T) {
	const (
		n       = 8
		msgsPer = 6
		seed    = int64(11)
	)
	pts := RunE20(n, []int{1, 2}, msgsPer, seed)
	if len(pts) != 4 {
		t.Fatalf("expected 4 points, got %d", len(pts))
	}
	byKey := make(map[[2]interface{}]E20Point)
	for _, p := range pts {
		if p.Violations != 0 {
			t.Errorf("%s N=%d k=%d: %d ordering violations", p.Substrate, p.N, p.K, p.Violations)
		}
		if p.Relevant == 0 {
			t.Errorf("%s N=%d k=%d: no relevant deliveries measured", p.Substrate, p.N, p.K)
		}
		if p.LatMean <= 0 || p.LatP99 < p.LatMean {
			t.Errorf("%s N=%d k=%d: implausible latency mean=%g p99=%g",
				p.Substrate, p.N, p.K, p.LatMean, p.LatP99)
		}
		byKey[[2]interface{}{p.Substrate, p.K}] = p
	}
	for _, k := range []int{1, 2} {
		mg := byKey[[2]interface{}{"mgcast", k}]
		big := byKey[[2]interface{}{"biggroup", k}]
		// Same destination draw => same relevant population, modulo
		// origin-local samples both arms exclude.
		if mg.Relevant != big.Relevant {
			t.Errorf("k=%d: relevant mismatch mgcast=%d biggroup=%d", k, mg.Relevant, big.Relevant)
		}
		if mg.DelivPerNode >= big.DelivPerNode {
			t.Errorf("k=%d: mgcast deliv/node %.2f not below biggroup %.2f",
				k, mg.DelivPerNode, big.DelivPerNode)
		}
	}
	// The big-group arm must deliver every cast at every node.
	big := byKey[[2]interface{}{"biggroup", 1}]
	if want := float64(n * msgsPer); big.DelivPerNode != want {
		t.Errorf("biggroup deliv/node = %.2f, want %.2f", big.DelivPerNode, want)
	}
}

// TestE20Deterministic re-runs one point and compares JSON lines —
// the seeded kernel must make the whole measurement reproducible.
func TestE20Deterministic(t *testing.T) {
	a := RunE20MGcast(8, 2, 5, 3).JSON()
	b := RunE20MGcast(8, 2, 5, 3).JSON()
	if a != b {
		t.Fatalf("mgcast point not deterministic:\n%s\n%s", a, b)
	}
}

// TestTableE20Renders checks the table pipeline end to end on a tiny
// grid.
func TestTableE20Renders(t *testing.T) {
	tab := TableE20([]int{8}, []int{1}, 4, 5)
	out := tab.Render()
	for _, want := range []string{"E20", "mgcast", "biggroup", "violations"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) != 2 {
		t.Errorf("expected 2 rows, got %d", len(tab.Rows))
	}
}
