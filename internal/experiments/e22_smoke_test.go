package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestE22Smoke is the net-smoke gate: build the real binaries, stand
// up a 3-process fleet per substrate, drive it with loadgen, and
// require zero ordering-oracle violations on the merged cross-process
// trace. This is the repo's only test whose subjects are separate OS
// processes talking over real sockets.
func TestE22Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; skipped in -short")
	}
	bin := t.TempDir()
	if err := BuildNetBinaries(bin); err != nil {
		t.Fatal(err)
	}
	for _, substrate := range []string{"cbcast", "abcast"} {
		t.Run(substrate, func(t *testing.T) {
			pt, err := RunE22(E22Config{
				Substrate: substrate,
				Nodes:     3,
				Workers:   1,
				Clients:   2000,
				Rate:      300,
				MsgSize:   64,
				Duration:  1500 * time.Millisecond,
				Trace:     true,
				BinDir:    bin,
				WorkDir:   t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if pt.Sent == 0 || pt.Done == 0 {
				t.Fatalf("fleet moved no traffic: %s", pt.JSON())
			}
			if !pt.Audited || pt.TraceEvents == 0 {
				t.Fatalf("no merged trace to audit: %s", pt.JSON())
			}
			if pt.CausalViolations != 0 {
				t.Errorf("%d causal-order violations on the real network", pt.CausalViolations)
			}
			if substrate == "abcast" && pt.TotalViolations != 0 {
				t.Errorf("total-order oracle: %d violations, want 0 (checked)", pt.TotalViolations)
			}
			if substrate == "cbcast" && pt.TotalViolations != -1 {
				t.Errorf("total order should not be checked for cbcast, got %d", pt.TotalViolations)
			}
			// Atomic mode: every process must have delivered every
			// multicast the fleet accepted.
			if pt.MinDelivered != pt.MaxDelivered {
				t.Errorf("delivery counts diverge across processes: min %d max %d",
					pt.MinDelivered, pt.MaxDelivered)
			}
			if pt.MinDelivered != pt.Sent {
				t.Errorf("delivered %d of %d accepted casts", pt.MinDelivered, pt.Sent)
			}
			t.Logf("%s fleet: %s", substrate, pt.JSON())
		})
	}
}

// TestTableE22Renders exercises the render path without spawning
// processes.
func TestTableE22Renders(t *testing.T) {
	pts := []E22Point{
		{Substrate: "abcast", Nodes: 3, Clients: 1000, Sent: 900, Done: 900,
			MsgsPerSec: 450.5, P50Ms: 1.2, P99Ms: 4.5, P999Ms: 9.1, BytesMsg: 210,
			Audited: true, CausalViolations: 0, TotalViolations: 0},
		{Substrate: "cbcast", Nodes: 3, Clients: 1000, Sent: 900, Done: 890, Lost: 10,
			MsgsPerSec: 445, TotalViolations: -1},
	}
	out := TableE22From(pts).Render()
	for _, want := range []string{"E22", "abcast", "cbcast", "causal viol"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Errorf("untraced arm should render '-' cells:\n%s", out)
	}
}
