package experiments

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"catocs/internal/obs"
	"catocs/internal/obs/live"
)

func TestE21SmallRun(t *testing.T) {
	pts := RunE21([]int{4}, 4, 1)
	if len(pts) != len(e21Substrates)*len(e21Modes) {
		t.Fatalf("got %d points, want %d", len(pts), len(e21Substrates)*len(e21Modes))
	}
	byKey := map[string]E21Point{}
	for _, p := range pts {
		byKey[p.Substrate+"/"+p.Mode] = p
		if p.Deliveries == 0 {
			t.Fatalf("%s/%s delivered nothing", p.Substrate, p.Mode)
		}
	}
	for _, sub := range e21Substrates {
		off, one, full := byKey[sub+"/off"], byKey[sub+"/sampled1pct"], byKey[sub+"/sampled100pct"]
		// Identical workload across arms is the experiment's premise.
		if off.Deliveries != one.Deliveries || off.Deliveries != full.Deliveries {
			t.Fatalf("%s: deliveries differ across arms: %d/%d/%d",
				sub, off.Deliveries, one.Deliveries, full.Deliveries)
		}
		if off.SampledMsgs != 0 || off.Retained != 0 {
			t.Fatalf("%s: off arm recorded trace state", sub)
		}
		if full.SampledMsgs == 0 || full.Retained == 0 {
			t.Fatalf("%s: 100%% arm sampled nothing", sub)
		}
		if one.SampledMsgs > full.SampledMsgs {
			t.Fatalf("%s: 1%% arm sampled more than 100%% arm", sub)
		}
	}
	tbl := TableE21From(pts)
	if len(tbl.Rows) != len(pts) || tbl.ID != "E21" {
		t.Fatalf("table: %d rows id=%s", len(tbl.Rows), tbl.ID)
	}
}

// TestObsEndpointSmoke is the end-to-end acceptance check: a live
// exposition server attached to a real experiment run serves valid
// Prometheus text with a counter, gauge, and histogram for the active
// substrate, and /statusz shows live holdback depth and
// admission-window occupancy.
func TestObsEndpointSmoke(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewSampledTracer(obs.SampleConfig{Rate: 1})
	srv, err := live.Serve("127.0.0.1:0", live.Options{Registry: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	SetObsHook(&ObsHook{Registry: reg, Tracer: tracer, Publish: srv.PublishStatus})
	defer SetObsHook(nil)
	if _, tr := RunE17("cbcast", 4, 6, 1); tr != tracer {
		t.Fatal("hook tracer not used by the run")
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	metrics := get("/metrics")
	for what, want := range map[string]string{
		"counter":   `catocs_sent_total{substrate="cbcast"`,
		"gauge":     `catocs_multicast_holdback_depth{substrate="cbcast"`,
		"histogram": `catocs_multicast_holdback_depth_dist{substrate="cbcast",node="0",quantile=`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s series %q:\n%.2000s", what, want, metrics)
		}
	}

	statusz := get("/statusz")
	for _, want := range []string{"multicast", "holdback_depth=", "window_occupancy=", "parked_casts="} {
		if !strings.Contains(statusz, want) {
			t.Errorf("/statusz missing %q:\n%s", want, statusz)
		}
	}

	if tracez := get("/tracez"); !strings.Contains(tracez, "msg ") {
		t.Errorf("/tracez has no sampled lifecycles:\n%.1000s", tracez)
	}
	if hz := get("/healthz"); hz != "ok\n" {
		t.Errorf("/healthz = %q", hz)
	}
}
