package experiments

import (
	"encoding/json"
	"math/rand"
	"sort"
	"time"

	"catocs/internal/chaos"
	"catocs/internal/mgcast"
	"catocs/internal/multicast"
	"catocs/internal/obs"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// E20 — multi-group atomic multicast vs the one-big-group fallback.
// The paper's §5 scalability complaint is that ISIS-style ABCAST
// totally orders only within a single group, so a workload whose
// messages address small overlapping subsets must either collapse
// everything into one big group (every process receives and orders
// every message) or give up cross-group consistency. This experiment
// measures the price of the collapse against Skeen-style genuine
// multicast (internal/mgcast), which delivers only at destination
// members yet still yields one acyclic global order.
//
// Setup: N wraparound groups of size max(3, N/8) over N nodes; every
// node sends on the E16 schedule, each cast addressed to k groups
// drawn from a shared seed — identical destination sets in both arms.
// The network charges a per-message receive service time (SimNet
// SetServiceTime), so "every node processes every message" is a cost,
// not a free abstraction. Latency is measured only at destination
// members ("relevant" deliveries) — the one-big-group arm delivers
// everywhere, but only the destinations matter to the application.
// Consistency is audited by the chaos cross-group oracles on the same
// traces.

// e20Service is the per-message receive processing cost. At the E16
// send rate it puts the one-big-group arm past its service capacity at
// N=128 while genuine multicast, handling only its destination share,
// stays below saturation — the load-coupling half of the §5 argument.
const e20Service = 30 * time.Microsecond

// e20GroupSize returns the member count of each overlapping group.
func e20GroupSize(n int) int {
	if s := n / 8; s > 3 {
		return s
	}
	return 3
}

// E20Point is one (substrate, N, k) measurement.
type E20Point struct {
	Substrate   string `json:"substrate"` // "mgcast" | "biggroup"
	N           int    `json:"n"`
	K           int    `json:"k"`
	GroupsTotal int    `json:"groups_total"`
	GroupSize   int    `json:"group_size"`
	Casts       uint64 `json:"casts"`
	// Relevant counts decomposed deliveries at destination members
	// (origin-local deliveries carry no wire leg and are excluded in
	// both arms).
	Relevant int `json:"relevant_deliveries"`
	// Latency statistics over relevant deliveries, seconds.
	LatMean float64 `json:"lat_mean_s"`
	LatP99  float64 `json:"lat_p99_s"`
	// HoldShare is ordering holdback's share of relevant latency.
	HoldShare float64 `json:"hold_share"`
	// Wire totals for the whole run (biggroup's are k-independent: one
	// big group cannot exploit the destination sets).
	WireMsgs  uint64 `json:"wire_msgs"`
	WireBytes uint64 `json:"wire_bytes"`
	// DelivPerNode is application deliveries each node processed,
	// relevant or not — the per-process load the substrate imposes.
	DelivPerNode float64 `json:"deliveries_per_node"`
	// Violations counts cross-group ordering-oracle findings (the
	// acyclicity oracle, plus dest-liveness for mgcast).
	Violations int `json:"order_violations"`
}

// JSON renders the point as one JSON line for machine consumers.
func (p E20Point) JSON() string {
	b, _ := json.Marshal(p)
	return string(b)
}

// e20Key identifies an application message in trace terms.
type e20Key struct {
	Sender int64
	Seq    uint64
}

// e20Picks draws each sender's per-cast destination-group sets. Both
// arms share one draw, so "relevant" means the same thing everywhere.
func e20Picks(n, k, msgsPer int, seed int64) [][][]string {
	names := mgcast.GroupNames(n)
	if k > len(names) {
		k = len(names)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x653230))
	picks := make([][][]string, n)
	for s := range picks {
		picks[s] = make([][]string, msgsPer)
		for i := range picks[s] {
			idx := rng.Perm(len(names))[:k]
			sort.Ints(idx)
			gs := make([]string, k)
			for j, gi := range idx {
				gs[j] = names[gi]
			}
			picks[s][i] = gs
		}
	}
	return picks
}

// e20Net builds the shared network: E16's lossless 2ms±2ms links plus
// the per-node receive service time.
func e20Net(seed int64, substrate string) (*sim.Kernel, *transport.SimNet, *obs.Tracer) {
	k := sim.NewKernel(seed)
	k.SetEventLimit(500_000_000)
	net := transport.NewSimNet(k, transport.LinkConfig{
		BaseDelay: 2 * time.Millisecond,
		Jitter:    2 * time.Millisecond,
	})
	net.SetServiceTime(e20Service)
	tracer := obsHookTracer(obs.NewTracer())
	net.Instrument(tracer, obsHookRegistry(), substrate)
	return k, net, tracer
}

// e20Schedule fires every sender's casts on the E16 cadence and runs
// the kernel to quiescence.
func e20Schedule(k *sim.Kernel, n, msgsPer int, cast func(s, i int)) {
	for s := 0; s < n; s++ {
		for i := 0; i < msgsPer; i++ {
			s, i := s, i
			k.At(time.Duration(i)*e16Interval+time.Duration(s)*100*time.Microsecond, func() {
				cast(s, i)
			})
		}
	}
	horizon := time.Duration(msgsPer)*e16Interval + time.Duration(n)*100*time.Microsecond
	k.RunUntil(horizon + 3*time.Second)
}

// e20Relevant filters a latency breakdown down to deliveries at
// destination members and summarises them.
func e20Relevant(bd *obs.Breakdown, dests map[e20Key][]vclock.ProcessID) (count int, mean, p99, holdShare float64) {
	var lat []float64
	var netSum, holdSum float64
	for _, s := range bd.Samples {
		ranks, ok := dests[e20Key{Sender: s.Msg.Sender, Seq: s.Msg.Seq}]
		if !ok {
			continue
		}
		isDest := false
		for _, r := range ranks {
			if int(r) == s.Node {
				isDest = true
				break
			}
		}
		if !isDest {
			continue
		}
		lat = append(lat, (s.Net + s.Hold).Seconds())
		netSum += s.Net.Seconds()
		holdSum += s.Hold.Seconds()
	}
	if len(lat) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	idx := int(float64(len(lat))*0.99) - 1
	if idx < 0 {
		idx = 0
	}
	share := 0.0
	if netSum+holdSum > 0 {
		share = holdSum / (netSum + holdSum)
	}
	return len(lat), sum / float64(len(lat)), lat[idx], share
}

// RunE20MGcast runs the genuine-multicast arm at one (N, k).
func RunE20MGcast(n, k, msgsPer int, seed int64) E20Point {
	kern, net, tracer := e20Net(seed, "mgcast")
	table := mgcast.WrapGroups(n, n, e20GroupSize(n))
	nodes := make([]transport.NodeID, n)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
	}
	var delivered uint64
	universe := mgcast.NewUniverse(net, nodes, mgcast.Config{
		Groups: table,
		Tracer: tracer,
	}, func(vclock.ProcessID) mgcast.DeliverFunc {
		return func(mgcast.Delivered) { delivered++ }
	})
	intros := make([]obs.Introspector, len(universe))
	for i, m := range universe {
		intros[i] = m
	}
	obsHookPublish(kern, "mgcast", intros...)
	defer func() {
		for _, m := range universe {
			m.Close()
		}
	}()

	picks := e20Picks(n, k, msgsPer, seed)
	dests := make(map[e20Key][]vclock.ProcessID)
	e20Schedule(kern, n, msgsPer, func(s, i int) {
		id := universe[s].Multicast(picks[s][i], i, e16PayloadBytes)
		dests[e20Key{Sender: int64(id.Sender), Seq: id.Seq}] = universe[s].DestRanks(picks[s][i])
	})

	events := tracer.Events()
	bd := obs.AnalyzeLatency(events)
	count, mean, p99, hold := e20Relevant(bd, dests)
	violations := len(chaos.CheckAcyclicOrder(chaos.DeliveryOrders(events)))
	violations += len(chaos.CheckDestLiveness(events, func(sender int64, seq uint64) []int {
		ranks, ok := dests[e20Key{Sender: sender, Seq: seq}]
		if !ok {
			return nil
		}
		out := make([]int, len(ranks))
		for i, r := range ranks {
			out[i] = int(r)
		}
		return out
	}, nil))
	st := net.Stats()
	return E20Point{
		Substrate: "mgcast", N: n, K: k,
		GroupsTotal: n, GroupSize: e20GroupSize(n),
		Casts:    uint64(n * msgsPer),
		Relevant: count, LatMean: mean, LatP99: p99, HoldShare: hold,
		WireMsgs: st.Sent, WireBytes: st.Bytes,
		DelivPerNode: float64(delivered) / float64(n),
		Violations:   violations,
	}
}

// e20BigGroupRun is the one-big-group arm's raw material: its run does
// not depend on k, so RunE20 executes it once per N and re-filters the
// breakdown for each k's destination sets.
type e20BigGroupRun struct {
	bd         *obs.Breakdown
	ids        map[[2]int]e20Key // (sender rank, msg index) -> trace key
	stats      transport.Stats
	delivered  uint64
	violations int
}

func runE20BigGroup(n, msgsPer int, seed int64) e20BigGroupRun {
	kern, net, tracer := e20Net(seed, "biggroup")
	nodes := make([]transport.NodeID, n)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
	}
	var delivered uint64
	members := multicast.NewGroup(net, nodes, multicast.Config{
		Group:    "e20",
		Ordering: multicast.TotalCausal,
		Tracer:   tracer,
	}, func(vclock.ProcessID) multicast.DeliverFunc {
		return func(multicast.Delivered) { delivered++ }
	})
	defer closeAll(members)

	ids := make(map[[2]int]e20Key)
	e20Schedule(kern, n, msgsPer, func(s, i int) {
		id := members[s].Multicast(i, e16PayloadBytes)
		ids[[2]int{s, i}] = e20Key{Sender: int64(id.Sender), Seq: id.Seq}
	})

	events := tracer.Events()
	orders := chaos.DeliveryOrders(events)
	return e20BigGroupRun{
		bd:         obs.AnalyzeLatency(events),
		ids:        ids,
		stats:      net.Stats(),
		delivered:  delivered,
		violations: len(chaos.CheckTotalOrder(orders)) + len(chaos.CheckAcyclicOrder(orders)),
	}
}

// bigGroupPoint filters the shared big-group run for one k.
func (r e20BigGroupRun) point(n, k, msgsPer int, seed int64) E20Point {
	table := mgcast.WrapGroups(n, n, e20GroupSize(n))
	picks := e20Picks(n, k, msgsPer, seed)
	dests := make(map[e20Key][]vclock.ProcessID)
	for s := 0; s < n; s++ {
		for i := 0; i < msgsPer; i++ {
			if key, ok := r.ids[[2]int{s, i}]; ok {
				dests[key] = mgcast.ResolveDests(table, picks[s][i])
			}
		}
	}
	count, mean, p99, hold := e20Relevant(r.bd, dests)
	return E20Point{
		Substrate: "biggroup", N: n, K: k,
		GroupsTotal: n, GroupSize: e20GroupSize(n),
		Casts:    uint64(n * msgsPer),
		Relevant: count, LatMean: mean, LatP99: p99, HoldShare: hold,
		WireMsgs: r.stats.Sent, WireBytes: r.stats.Bytes,
		DelivPerNode: float64(r.delivered) / float64(n),
		Violations:   r.violations,
	}
}

// RunE20 measures both arms at one N across the k sweep. The big-group
// arm runs once (its behaviour cannot depend on k) and is re-filtered
// per k; the mgcast arm runs per k because its traffic genuinely
// changes with the destination sets.
func RunE20(n int, ks []int, msgsPer int, seed int64) []E20Point {
	big := runE20BigGroup(n, msgsPer, seed)
	var pts []E20Point
	for _, k := range ks {
		pts = append(pts, RunE20MGcast(n, k, msgsPer, seed))
		pts = append(pts, big.point(n, k, msgsPer, seed))
	}
	return pts
}

// RunE20Sweep runs the full (N, k) grid.
func RunE20Sweep(sizes, ks []int, msgsPer int, seed int64) []E20Point {
	var pts []E20Point
	for _, n := range sizes {
		pts = append(pts, RunE20(n, ks, msgsPer, seed)...)
	}
	return pts
}

// TableE20From renders already-computed points.
func TableE20From(pts []E20Point) *Table {
	t := &Table{
		ID:    "E20",
		Title: "Multi-group multicast vs one big group: latency and load at destination members (§5)",
		Claim: "Skeen-style genuine multicast keeps cross-group delivery acyclic while charging only destination members; the one-big-group fallback buys the same consistency by making every process order and service every message",
		Headers: []string{"substrate", "N", "k", "casts", "relevant", "lat mean ms", "lat p99 ms",
			"hold share", "wire msgs", "wire MB", "deliv/node", "violations"},
	}
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{
			pt.Substrate, fmtI(pt.N), fmtI(pt.K), fmtU(pt.Casts), fmtI(pt.Relevant),
			fmtMs(pt.LatMean), fmtMs(pt.LatP99), fmtF(pt.HoldShare),
			fmtU(pt.WireMsgs), fmtF(float64(pt.WireBytes) / (1 << 20)), fmtF(pt.DelivPerNode),
			fmtI(pt.Violations),
		})
	}
	t.Notes = append(t.Notes,
		"k destination groups per cast from N wraparound groups of size max(3, N/8); both arms share the same destination draw",
		"latency measured at destination members only; each node pays a 30µs receive service time per message, so load coupling is priced in",
		"biggroup rows repeat one k-independent run re-filtered per k: one big group cannot exploit destination sets by construction",
		"violations = cross-group acyclicity (+ dest-liveness for mgcast) oracle findings on the run's own trace")
	return t
}

// TableE20 runs the sweep and renders it.
func TableE20(sizes, ks []int, msgsPer int, seed int64) *Table {
	return TableE20From(RunE20Sweep(sizes, ks, msgsPer, seed))
}
