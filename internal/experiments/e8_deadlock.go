package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"catocs/internal/detect"
	"catocs/internal/multicast"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// E8 — RPC deadlock detection (§4.2, Appendix 9.2). The same RPC
// workload, with a deadlock cycle injected at a known time, is run
// under both detectors:
//
//   - van Renesse: every RPC invocation and return is causally
//     multicast to a group of all workers plus the monitor — 2 causal
//     multicasts per RPC, each fanning out to the whole group.
//   - instance-id: each worker tracks its local augmented wait-for
//     edges and periodically sends them (one plain message, sequence-
//     numbered) to the monitor.
//
// Measured: detection-machinery messages, detection latency from cycle
// formation, and false deadlocks (must be zero in both).

// rpcOp is one scripted event.
type rpcOp struct {
	at     time.Duration
	ret    bool
	caller detect.Instance
	callee detect.Instance
}

// e8Workload builds a background RPC script plus a deadlock cycle of
// cycleLen workers formed at cycleAt.
func e8Workload(procs, rpcs int, cycleLen int, cycleAt time.Duration, seed int64) (ops []rpcOp, formed time.Duration) {
	rng := rand.New(rand.NewSource(seed))
	nextInst := make([]int, procs)
	name := func(p int) string { return string(rune('A' + p)) }
	inst := func(p int) detect.Instance {
		nextInst[p]++
		return detect.Instance{Proc: name(p), ID: nextInst[p]}
	}
	for i := 0; i < rpcs; i++ {
		caller := rng.Intn(procs)
		callee := rng.Intn(procs)
		if callee == caller {
			callee = (callee + 1) % procs
		}
		at := time.Duration(rng.Intn(int(cycleAt/time.Millisecond))) * time.Millisecond
		dur := time.Duration(10+rng.Intn(20)) * time.Millisecond
		ci, ce := inst(caller), inst(callee)
		ops = append(ops, rpcOp{at: at, caller: ci, callee: ce})
		ops = append(ops, rpcOp{at: at + dur, ret: true, caller: ci, callee: ce})
	}
	// The cycle: worker p invokes worker p+1, none return.
	var cycleInsts []detect.Instance
	for p := 0; p < cycleLen; p++ {
		cycleInsts = append(cycleInsts, inst(p))
	}
	for p := 0; p < cycleLen; p++ {
		at := cycleAt + time.Duration(p)*2*time.Millisecond
		ops = append(ops, rpcOp{at: at, caller: cycleInsts[p], callee: cycleInsts[(p+1)%cycleLen]})
		if at > formed {
			formed = at
		}
	}
	return ops, formed
}

// E8Point is one run's comparison.
type E8Point struct {
	Procs, RPCs int
	// Van Renesse detector.
	VRMsgs     uint64
	VRDetectMs float64
	VRDetected bool
	VRFalse    int
	// Instance-id detector.
	STMsgs     uint64
	STDetectMs float64
	STDetected bool
	STFalse    int
}

// RunE8 runs both detectors on the same workload.
func RunE8(procs, rpcs int, reportEvery time.Duration, seed int64) E8Point {
	cycleAt := 150 * time.Millisecond
	ops, formed := e8Workload(procs, rpcs, 3, cycleAt, seed)
	horizon := cycleAt + 600*time.Millisecond
	pt := E8Point{Procs: procs, RPCs: rpcs}

	// --- van Renesse mode -------------------------------------------
	{
		k := sim.NewKernel(seed)
		k.SetEventLimit(100_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: 2 * time.Millisecond})
		nodes := make([]transport.NodeID, procs+1)
		for i := range nodes {
			nodes[i] = transport.NodeID(i)
		}
		mon := detect.NewEventMonitor()
		var detectedAt time.Duration
		var members []*multicast.Member
		members = multicast.NewGroup(net, nodes,
			multicast.Config{Group: "e8vr", Ordering: multicast.Causal},
			func(rank vclock.ProcessID) multicast.DeliverFunc {
				if int(rank) != procs {
					return nil // workers consume nothing
				}
				return func(d multicast.Delivered) {
					ev, ok := d.Payload.(detect.RPCEvent)
					if !ok {
						return
					}
					mon.Observe(ev)
					if cyc := mon.Deadlock(); cyc != nil {
						if k.Now() < formed {
							pt.VRFalse++
						} else if detectedAt == 0 {
							detectedAt = k.Now()
						}
					}
				}
			})
		procOf := func(in detect.Instance) int { return int(in.Proc[0] - 'A') }
		for _, op := range ops {
			op := op
			k.At(op.at, func() {
				ev := detect.RPCEvent{Caller: op.caller, Callee: op.callee}
				sender := procOf(op.caller)
				if op.ret {
					ev.Kind = detect.Return
					sender = procOf(op.callee)
				} else {
					ev.Kind = detect.Invoke
				}
				members[sender].Multicast(ev, 32)
			})
		}
		k.RunUntil(horizon)
		for _, m := range members {
			m.Close()
		}
		pt.VRMsgs = net.Stats().Sent
		if detectedAt > 0 {
			pt.VRDetected = true
			pt.VRDetectMs = float64((detectedAt - formed).Microseconds()) / 1000.0
		}
	}

	// --- instance-id mode ---------------------------------------------
	{
		k := sim.NewKernel(seed)
		k.SetEventLimit(100_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: 2 * time.Millisecond})
		monNode := transport.NodeID(procs)
		mon := detect.NewStateMonitor()
		var detectedAt time.Duration
		net.Register(monNode, func(_ transport.NodeID, payload any) {
			r, ok := payload.(detect.Report)
			if !ok {
				return
			}
			mon.Observe(r)
			if cyc := mon.Deadlock(); cyc != nil {
				if k.Now() < formed {
					pt.STFalse++
				} else if detectedAt == 0 {
					detectedAt = k.Now()
				}
			}
		})
		// Workers: local wait sets updated by the script; periodic
		// reports to the monitor.
		type worker struct {
			waits map[detect.Edge]bool
			seq   uint64
		}
		workers := make([]*worker, procs)
		for i := range workers {
			workers[i] = &worker{waits: make(map[detect.Edge]bool)}
		}
		procOf := func(in detect.Instance) int { return int(in.Proc[0] - 'A') }
		for _, op := range ops {
			op := op
			k.At(op.at, func() {
				w := workers[procOf(op.caller)]
				e := detect.Edge{From: op.caller, To: op.callee}
				if op.ret {
					delete(w.waits, e)
				} else {
					w.waits[e] = true
				}
			})
		}
		var tick func(p int)
		stopped := false
		tick = func(p int) {
			if stopped {
				return
			}
			w := workers[p]
			w.seq++
			var edges []detect.Edge
			for e := range w.waits {
				edges = append(edges, e)
			}
			net.Send(transport.NodeID(p), monNode,
				detect.Report{Proc: string(rune('A' + p)), Seq: w.seq, Edges: edges})
			k.After(reportEvery, func() { tick(p) })
		}
		for p := 0; p < procs; p++ {
			p := p
			k.At(time.Duration(p)*time.Millisecond, func() { tick(p) })
		}
		k.At(horizon, func() { stopped = true })
		k.RunUntil(horizon)
		pt.STMsgs = net.Stats().Sent
		if detectedAt > 0 {
			pt.STDetected = true
			pt.STDetectMs = float64((detectedAt - formed).Microseconds()) / 1000.0
		}
	}
	return pt
}

// TableE8 sweeps worker count.
func TableE8(procCounts []int, rpcs int, seed int64) *Table {
	t := &Table{
		ID:    "E8",
		Title: "RPC deadlock detection: causal multicast (van Renesse) vs instance-id reports (Appendix 9.2)",
		Claim: "2 causal multicasts per RPC to everyone is prohibitive for detecting an infrequent event; periodic wait-for reports are as simple, cheaper, and handle multi-threaded processes",
		Headers: []string{"workers", "RPCs", "vR msgs", "vR detect ms", "inst-id msgs", "inst-id detect ms",
			"msg ratio", "false deadlocks"},
	}
	for _, p := range procCounts {
		pt := RunE8(p, rpcs, 25*time.Millisecond, seed)
		ratio := "n/a"
		if pt.STMsgs > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(pt.VRMsgs)/float64(pt.STMsgs))
		}
		det := func(ok bool, ms float64) string {
			if !ok {
				return "MISSED"
			}
			return fmtF(ms)
		}
		t.Rows = append(t.Rows, []string{
			fmtI(pt.Procs), fmtI(pt.RPCs),
			fmtU(pt.VRMsgs), det(pt.VRDetected, pt.VRDetectMs),
			fmtU(pt.STMsgs), det(pt.STDetected, pt.STDetectMs),
			ratio, fmtI(pt.VRFalse + pt.STFalse),
		})
	}
	return t
}
