package experiments

import (
	"time"

	"catocs/internal/multicast"
	"catocs/internal/realtime"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// E12 — real-time monitoring (§4.6). Sensors sample a ramp signal and
// multicast timestamped readings; the factory network has jitter and
// loss. Two consumers are compared at a monitor station:
//
//   - CATOCS: readings arrive through causal atomic multicast (loss
//     recovery forces delayed, in-order delivery) and the consumer
//     trusts delivery order.
//   - State: readings arrive unordered (stale ones may overtake fresh
//     ones, losses stay lost) and the consumer keeps the
//     latest-timestamped reading.
//
// "Sufficient consistency" is tracked by probing staleness and |view −
// truth| on a fixed schedule.

// E12Point is one configuration's outcome.
type E12Point struct {
	Loss          float64
	CatocsStaleMs float64
	CatocsRMS     float64
	StateStaleMs  float64
	StateRMS      float64
}

// RunE12 measures one loss rate.
func RunE12(loss float64, seed int64) E12Point {
	const (
		sensors    = 3
		samples    = 60
		sampleEach = 5 * time.Millisecond
	)
	truth := realtime.Ramp{Slope: 100} // degrees per second
	probeEvery := 2 * time.Millisecond
	// Probe only while the sensors are live: after the last sample both
	// consumers go equally stale and the tail would wash out the
	// difference that matters.
	probeUntil := time.Duration(samples) * sampleEach
	horizon := probeUntil + time.Second

	run := func(causal bool) (staleMs, rms float64) {
		k := sim.NewKernel(seed)
		k.SetEventLimit(50_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{
			BaseDelay: 2 * time.Millisecond,
			Jitter:    10 * time.Millisecond,
			LossProb:  loss,
		})
		nodes := make([]transport.NodeID, sensors+1)
		for i := range nodes {
			nodes[i] = transport.NodeID(i)
		}
		var mon *realtime.Monitor
		if causal {
			mon = realtime.NewDeliveryOrderMonitor()
		} else {
			mon = realtime.NewTemporalMonitor()
		}
		ord := multicast.Unordered
		atomic := false
		if causal {
			ord = multicast.Causal
			atomic = true // loss recovery is mandatory or delivery stalls
		}
		members := multicast.NewGroup(net, nodes,
			multicast.Config{Group: "e12", Ordering: ord, Atomic: atomic,
				AckInterval: 10 * time.Millisecond, NackDelay: 10 * time.Millisecond},
			func(rank vclock.ProcessID) multicast.DeliverFunc {
				if int(rank) != sensors {
					return nil
				}
				return func(d multicast.Delivered) {
					if r, ok := d.Payload.(realtime.Reading); ok {
						mon.Observe(r)
					}
				}
			})
		// Sensors sample the ramp. Sensor 0 is the probe target; the
		// others add the cross-traffic that creates false causality.
		for s := 0; s < sensors; s++ {
			for i := 0; i < samples; i++ {
				s, i := s, i
				at := time.Duration(i)*sampleEach + time.Duration(s)*time.Millisecond
				k.At(at, func() {
					members[s].Multicast(realtime.Reading{
						Sensor: "oven0",
						Seq:    uint64(i),
						T:      k.Now(),
						Value:  truth.At(k.Now()),
					}, 32)
				})
			}
		}
		var tracker realtime.Tracker
		for t := 10 * time.Millisecond; t < probeUntil; t += probeEvery {
			t := t
			k.At(t, func() { tracker.Probe(mon, "oven0", truth, k.Now()) })
		}
		k.RunUntil(horizon)
		for _, m := range members {
			m.Close()
		}
		return tracker.StaleSecs.Mean() * 1000, tracker.RMS()
	}

	pt := E12Point{Loss: loss}
	pt.CatocsStaleMs, pt.CatocsRMS = run(true)
	pt.StateStaleMs, pt.StateRMS = run(false)
	return pt
}

// TableE12 sweeps loss rates.
func TableE12(losses []float64, seed int64) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Real-time monitoring: CATOCS delivery order vs timestamped latest-value (§4.6)",
		Claim:   "update messages delayed by CATOCS reduce consistency with the monitored system; periodic timestamped updates with drop-older semantics track it better",
		Headers: []string{"loss", "catocs stale ms", "catocs RMS err", "temporal stale ms", "temporal RMS err"},
	}
	for _, loss := range losses {
		pt := RunE12(loss, seed)
		t.Rows = append(t.Rows, []string{
			fmtF(pt.Loss), fmtF(pt.CatocsStaleMs), fmtF(pt.CatocsRMS),
			fmtF(pt.StateStaleMs), fmtF(pt.StateRMS),
		})
	}
	t.Notes = append(t.Notes,
		"RMS err is |displayed − true| for a ramp at 100 units/s: staleness converts directly into tracking error")
	return t
}
