package experiments

import (
	"fmt"
	"testing"
)

func TestE16FullSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	tab := TableE16([]int{8, 32, 128, 512}, 4, 1)
	fmt.Println(tab.Render())
}
