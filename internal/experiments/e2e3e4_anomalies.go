package experiments

import (
	"catocs/internal/apps/firealarm"
	"catocs/internal/apps/sfc"
	"catocs/internal/apps/trading"
	"catocs/internal/multicast"
)

// TableE2 runs the Figure 2 hidden-channel trials under causal and
// total ordering and reports anomaly rates for the raw and versioned
// observers.
func TableE2(trials int, baseSeed int64) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Figure 2: hidden channel (shared database) — SFC scenario",
		Claim:   "the shared database orders requests invisibly to the substrate; CATOCS delivers 'stop' before 'start'; DB version numbers fix it",
		Headers: []string{"ordering", "trials", "raw anomalies", "versioned anomalies"},
	}
	for _, ord := range []multicast.Ordering{multicast.Causal, multicast.TotalSeq, multicast.TotalCausal} {
		raw, versioned := sfc.Trials(trials, baseSeed, ord)
		t.Rows = append(t.Rows, []string{ord.String(), fmtI(trials), fmtI(raw), fmtI(versioned)})
	}
	return t
}

// TableE3 runs the Figure 3 external-channel trials.
func TableE3(trials int, baseSeed int64) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Figure 3: external channel (fire) — alarm scenario",
		Claim:   "the fire is a channel the message system cannot see; 'fire out' can arrive last; real-time timestamps fix it",
		Headers: []string{"ordering", "trials", "raw anomalies", "temporal anomalies"},
	}
	for _, ord := range []multicast.Ordering{multicast.Causal, multicast.TotalSeq, multicast.TotalCausal} {
		raw, temporal := firealarm.Trials(trials, baseSeed, ord)
		t.Rows = append(t.Rows, []string{ord.String(), fmtI(trials), fmtI(raw), fmtI(temporal)})
	}
	return t
}

// TableE4 runs the Figure 4 trading trials.
func TableE4(trials int, baseSeed int64) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Figure 4: trading false crossing — semantic ordering constraints",
		Claim:   "new option price ∥ old theoretical price: neither causal nor total multicast avoids the false crossing; dependency fields do",
		Headers: []string{"ordering", "trials", "raw crossings", "raw stale pairings", "dep-checked crossings", "dep-checked stale"},
	}
	for _, ord := range []multicast.Ordering{multicast.Causal, multicast.TotalSeq, multicast.TotalCausal} {
		rawCross, rawStale, cacheCross, cacheStale := trading.Trials(trials, baseSeed, ord)
		t.Rows = append(t.Rows, []string{
			ord.String(), fmtI(trials), fmtI(rawCross), fmtI(rawStale), fmtI(cacheCross), fmtI(cacheStale),
		})
	}
	return t
}
