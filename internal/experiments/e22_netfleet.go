package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"catocs/internal/chaos"
	"catocs/internal/netharness"
	"catocs/internal/obs"
)

// E22 — the reproduction leaves the simulator. Every table so far runs
// on virtual time inside one process; E22 stands up a fleet of real OS
// processes (cmd/node) joined over TCP (internal/transport/tcpnet) and
// drives them with cmd/loadgen's simulated clients. The measurement is
// twofold: the throughput/latency arm runs untraced at full load and
// reports sustained msgs/s, delivery quantiles, and wire bytes per
// message; the audit arm runs a smaller traced fleet, merges each
// process's obs trace on the shared wall-clock epoch, and feeds the
// merged timeline to the chaos oracles — the same causal- and
// total-order checks the simulator answers to, now answered by real
// sockets, real schedulers, and real packet interleavings.

// E22Config parameterizes one fleet run.
type E22Config struct {
	Substrate string        // cbcast | abcast
	Nodes     int           // fleet processes (3..8)
	Workers   int           // loadgen shards (each is one pubsub endpoint)
	Clients   int           // simulated clients across all shards
	Rate      float64       // target publishes/sec across all shards
	MsgSize   int           // payload bytes
	Duration  time.Duration // send phase
	Trace     bool          // collect per-process obs traces and audit ordering
	BinDir    string        // directory holding the node and loadgen binaries
	WorkDir   string        // scratch directory for stats/trace/report files
}

// E22Point is one fleet measurement.
type E22Point struct {
	Substrate  string  `json:"substrate"`
	Nodes      int     `json:"nodes"`
	Workers    int     `json:"workers"`
	Clients    int     `json:"clients"`
	Rate       float64 `json:"target_rate"`
	Sent       uint64  `json:"sent"`
	Done       uint64  `json:"done"`
	Lost       uint64  `json:"lost"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	BytesMsg   float64 `json:"bytes_per_msg"`
	// Audited is true when the run was traced and the oracles ran.
	Audited bool `json:"audited"`
	// TraceEvents is the merged cross-process timeline's length.
	TraceEvents int `json:"trace_events"`
	// CausalViolations / TotalViolations report the oracles; Total is
	// only meaningful for total-order substrates (-1 = not checked).
	CausalViolations int `json:"causal_violations"`
	TotalViolations  int `json:"total_violations"`
	// MinDelivered/MaxDelivered summarize per-node delivery counts:
	// with atomic mode on, every node should deliver every multicast.
	MinDelivered uint64 `json:"min_delivered"`
	MaxDelivered uint64 `json:"max_delivered"`
}

// JSON renders the point as one JSON line.
func (p E22Point) JSON() string {
	b, _ := json.Marshal(p)
	return string(b)
}

// BuildNetBinaries compiles cmd/node and cmd/loadgen into dir using
// the module's own toolchain. The fleet runner execs the results, so
// E22 measures separate OS processes, not goroutines sharing a heap.
func BuildNetBinaries(dir string) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/node", "./cmd/loadgen")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("build net binaries: %v\n%s", err, out)
	}
	return nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above working directory")
		}
		dir = parent
	}
}

// reservePorts grabs n distinct loopback addresses by binding and
// releasing ephemeral listeners.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// RunE22 stands up the fleet, drives it, tears it down, and audits the
// result. Node processes are SIGTERMed after loadgen completes; each
// writes its stats snapshot (and trace, when tracing) on the way out.
func RunE22(cfg E22Config) (E22Point, error) {
	pt := E22Point{
		Substrate: cfg.Substrate, Nodes: cfg.Nodes, Workers: cfg.Workers,
		Clients: cfg.Clients, Rate: cfg.Rate, TotalViolations: -1,
	}
	if cfg.Nodes < 1 || cfg.Workers < 1 {
		return pt, fmt.Errorf("e22: need at least one node and one worker")
	}
	addrs, err := reservePorts(cfg.Nodes + cfg.Workers)
	if err != nil {
		return pt, err
	}
	fleet := make(map[int]string, cfg.Nodes)
	var fleetSpec, workerSpec string
	for i := 0; i < cfg.Nodes; i++ {
		fleet[i] = addrs[i]
		if i > 0 {
			fleetSpec += ","
		}
		fleetSpec += fmt.Sprintf("%d=%s", i, addrs[i])
	}
	for i := 0; i < cfg.Workers; i++ {
		if i > 0 {
			workerSpec += ","
		}
		workerSpec += fmt.Sprintf("%d=%s", 100+i, addrs[cfg.Nodes+i])
	}
	epoch := time.Now().UnixNano()

	// Launch the fleet. Every process gets the same epoch so their
	// trace timestamps land on one comparable timeline.
	nodeBin := filepath.Join(cfg.BinDir, "node")
	procs := make([]*exec.Cmd, cfg.Nodes)
	statsFiles := make([]string, cfg.Nodes)
	traceFiles := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		statsFiles[i] = filepath.Join(cfg.WorkDir, fmt.Sprintf("node%d.stats.json", i))
		args := []string{
			"-id", fmt.Sprint(i),
			"-nodes", fleetSpec,
			"-workers", workerSpec,
			"-substrate", cfg.Substrate,
			"-epoch", fmt.Sprint(epoch),
			"-stats", statsFiles[i],
		}
		if cfg.Trace {
			traceFiles[i] = filepath.Join(cfg.WorkDir, fmt.Sprintf("node%d.trace.jsonl", i))
			args = append(args, "-trace", traceFiles[i])
		}
		cmd := exec.Command(nodeBin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			killAll(procs)
			return pt, fmt.Errorf("start node %d: %w", i, err)
		}
		procs[i] = cmd
	}
	defer killAll(procs)

	// Drive it. tcpnet queues outbound frames while dials are in
	// flight, so loadgen can start immediately.
	reportPath := filepath.Join(cfg.WorkDir, "loadgen.json")
	lg := exec.Command(filepath.Join(cfg.BinDir, "loadgen"),
		"-nodes", fleetSpec,
		"-workers", workerSpec,
		"-clients", fmt.Sprint(cfg.Clients),
		"-rate", fmt.Sprint(cfg.Rate),
		"-size", fmt.Sprint(cfg.MsgSize),
		"-duration", cfg.Duration.String(),
		"-epoch", fmt.Sprint(epoch),
		"-substrate", cfg.Substrate,
		"-out", reportPath,
	)
	lg.Stderr = os.Stderr
	if err := lg.Run(); err != nil {
		return pt, fmt.Errorf("loadgen: %w", err)
	}

	// Tear down: SIGTERM makes each node snapshot its stats and trace.
	for _, p := range procs {
		p.Process.Signal(syscall.SIGTERM)
	}
	for i, p := range procs {
		if err := waitFor(p, 10*time.Second); err != nil {
			return pt, fmt.Errorf("node %d exit: %w", i, err)
		}
		procs[i] = nil
	}

	// Harvest the loadgen report.
	var report netharness.LoadReport
	if err := readJSON(reportPath, &report); err != nil {
		return pt, err
	}
	pt.Sent, pt.Done, pt.Lost = report.Sent, report.Done, report.Lost
	pt.MsgsPerSec = report.MsgsPerSec
	pt.P50Ms, pt.P99Ms, pt.P999Ms = report.Latency.P50Ms, report.Latency.P99Ms, report.Latency.P999Ms
	pt.BytesMsg = report.BytesPerMsg

	// Harvest the fleet snapshots.
	for i := range statsFiles {
		var snap netharness.NodeSnapshot
		if err := readJSON(statsFiles[i], &snap); err != nil {
			return pt, err
		}
		if i == 0 || snap.Delivered < pt.MinDelivered {
			pt.MinDelivered = snap.Delivered
		}
		if snap.Delivered > pt.MaxDelivered {
			pt.MaxDelivered = snap.Delivered
		}
	}

	// Audit: merge the per-process traces on the shared epoch and run
	// the simulator's own ordering oracles over the real-network run.
	if cfg.Trace {
		traces := make([][]obs.Event, 0, len(traceFiles))
		for _, path := range traceFiles {
			f, err := os.Open(path)
			if err != nil {
				return pt, err
			}
			evs, err := obs.ReadEventsJSON(f)
			f.Close()
			if err != nil {
				return pt, fmt.Errorf("read trace %s: %w", path, err)
			}
			traces = append(traces, evs)
		}
		merged := obs.MergeEvents(traces...)
		pt.Audited = true
		pt.TraceEvents = len(merged)
		pt.CausalViolations = len(chaos.CheckCausalOrder(merged))
		if cfg.Substrate == "abcast" {
			pt.TotalViolations = len(chaos.CheckTotalOrder(chaos.DeliveryOrders(merged)))
		}
	}
	return pt, nil
}

// killAll hard-kills any still-running fleet process.
func killAll(procs []*exec.Cmd) {
	for _, p := range procs {
		if p != nil && p.Process != nil {
			p.Process.Kill()
			p.Wait()
		}
	}
}

// waitFor waits for a process with a deadline.
func waitFor(p *exec.Cmd, d time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- p.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		p.Process.Kill()
		return fmt.Errorf("timeout after %v", d)
	}
}

// readJSON decodes one JSON document from a file.
func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}

// TableE22From renders already-computed points.
func TableE22From(pts []E22Point) *Table {
	t := &Table{
		ID:    "E22",
		Title: "Real-network fleet: OS processes over TCP under loadgen",
		Claim: "the ordering guarantees the simulator certifies must survive real sockets: a multi-process cbcast/abcast fleet delivers loadgen traffic with zero causal/total-order oracle violations, at measured real-wire cost",
		Headers: []string{"substrate", "procs", "clients", "sent", "done", "lost",
			"msgs/s", "p50 ms", "p99 ms", "p99.9 ms", "bytes/msg",
			"causal viol", "total viol"},
	}
	for _, p := range pts {
		tot := "-"
		if p.TotalViolations >= 0 {
			tot = fmtI(p.TotalViolations)
		}
		cv := "-"
		if p.Audited {
			cv = fmtI(p.CausalViolations)
		}
		t.Rows = append(t.Rows, []string{
			p.Substrate, fmtI(p.Nodes), fmtI(p.Clients),
			fmtU(p.Sent), fmtU(p.Done), fmtU(p.Lost),
			fmtF(p.MsgsPerSec), fmtF(p.P50Ms), fmtF(p.P99Ms), fmtF(p.P999Ms),
			fmtF(p.BytesMsg), cv, tot,
		})
	}
	t.Notes = append(t.Notes,
		"each proc is a separate OS process (cmd/node) on a TCP transport; loadgen drives simulated clients through the pubsub ingress",
		"latency is the full path: worker publish -> ingress multicast -> ordered delivery at the origin -> \"done\" echo back to the worker, on the wall clock",
		"audited rows merge every process's obs trace on a shared epoch and run the chaos causal/total-order oracles over the real interleaving",
		"bytes/msg counts loadgen-side wire bytes both directions, frame headers included; '-' = arm ran untraced (throughput arms skip tracing to avoid observer cost)")
	return t
}
