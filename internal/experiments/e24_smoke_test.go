package experiments

import (
	"testing"
)

// TestE24Smoke runs both substrates at a small N and checks the
// structural claims the published table rests on: the membership arm
// reconfigures with zero oracle violations, transfers real state, and
// absorbs the rejoin replay as dups; the scalecast arm reconfigures
// with zero transfer bytes and a far smaller availability window (its
// operator has no detection latency).
func TestE24Smoke(t *testing.T) {
	const (
		n    = 8
		seed = int64(24)
	)
	mc := RunE24("multicast", n, seed)
	sc := RunE24("scalecast", n, seed)

	if mc.Violations != 0 {
		t.Fatalf("multicast arm: %d churn-oracle violations", mc.Violations)
	}
	if mc.Reconfigs < 4 {
		t.Errorf("multicast arm: %d reconfigs, want ≥4 (crash, rejoin, 2 joins, leave may coalesce one)", mc.Reconfigs)
	}
	if mc.TransferBytes == 0 {
		t.Errorf("multicast arm: no state transferred to joiners")
	}
	if mc.Dups == 0 {
		t.Errorf("multicast arm: WAL replay produced no dup applies; rejoin path untested")
	}
	if mc.MetaPerReconfig <= 0 {
		t.Errorf("multicast arm: no membership metadata per reconfig")
	}

	if sc.Reconfigs != 5 {
		t.Errorf("scalecast arm: %d reconfigs, want 5 (operator rewires never coalesce)", sc.Reconfigs)
	}
	if sc.TransferBytes != 0 {
		t.Errorf("scalecast arm: %d transfer bytes, want 0 by construction", sc.TransferBytes)
	}
	if sc.Dups != 0 {
		t.Errorf("scalecast arm: %d dups, want 0 — nothing replays", sc.Dups)
	}
	if sc.MetaPerReconfig <= 0 {
		t.Errorf("scalecast arm: rewire cost not isolated from the control run")
	}
	if sc.UnavailMax >= mc.UnavailMax {
		t.Errorf("scalecast unavail %.1fms not below multicast %.1fms: detection latency should dominate",
			sc.UnavailMax*1000, mc.UnavailMax*1000)
	}

	// Determinism: the table is reproducible from (sizes, seed).
	if again := RunE24("multicast", n, seed); again.Digest != mc.Digest {
		t.Errorf("multicast digest not deterministic: %x vs %x", mc.Digest, again.Digest)
	}

	tbl := TableE24([]int{n}, seed)
	if len(tbl.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tbl.Rows))
	}
}
