package experiments

import (
	"fmt"
	"time"

	"catocs/internal/apps/drilling"
	"catocs/internal/apps/netnews"
)

// TableE10 sweeps the drilling cell (Appendix 9.1): message traffic
// and correctness of the central-controller versus CATOCS distributed
// scheduling designs, healthy and with a crashed driller.
func TableE10(drillerCounts []int, holesPerDriller int, seed int64) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Drilling cell: central controller vs CATOCS distributed scheduling (Appendix 9.1)",
		Claim: "central traffic is linear in holes; the CATOCS solution's is quadratic (every completion multicast to every driller); both must never double-drill",
		Headers: []string{"drillers", "holes", "central data msgs", "catocs data msgs", "ratio",
			"double-drilled", "checklist (crash run)"},
	}
	for _, d := range drillerCounts {
		cfg := drilling.Config{
			Seed:         seed,
			Holes:        d * holesPerDriller,
			Drillers:     d,
			DrillTime:    10 * time.Millisecond,
			CrashDriller: -1,
		}
		central := drilling.RunCentral(cfg)
		catocs := drilling.RunCatocs(cfg)

		crashCfg := cfg
		crashCfg.CrashDriller = d - 1
		crashCfg.CrashAt = 15 * time.Millisecond
		centralCrash := drilling.RunCentral(crashCfg)
		catocsCrash := drilling.RunCatocs(crashCfg)

		ratio := "n/a"
		if central.DataMsgs > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(catocs.DataMsgs)/float64(central.DataMsgs))
		}
		t.Rows = append(t.Rows, []string{
			fmtI(d), fmtI(cfg.Holes),
			fmtU(central.DataMsgs), fmtU(catocs.DataMsgs), ratio,
			fmtI(central.DoubleDrilled + catocs.DoubleDrilled + centralCrash.DoubleDrilled + catocsCrash.DoubleDrilled),
			fmt.Sprintf("central=%d catocs=%d", len(centralCrash.Checklist), len(catocsCrash.Checklist)),
		})
	}
	return t
}

// TableE11 compares the netnews treatments (§4.1).
func TableE11(seed int64) *Table {
	cfg := netnews.DefaultConfig()
	cfg.Seed = seed
	rs := netnews.RunState(cfg)
	rc := netnews.RunCatocs(cfg)
	t := &Table{
		ID:    "E11",
		Title: "Netnews: References-field database vs whole-feed causal group (§4.1)",
		Claim: "the application fix orders inquiry/response with state proportional to held responses; the causal group delays all subsequent traffic behind a slow inquiry",
		Headers: []string{"treatment", "misordered displays", "mean display ms (all)",
			"mean display ms (unrelated)", "p99 ms (unrelated)", "peak ordering state", "msgs"},
	}
	t.Rows = append(t.Rows, []string{
		"raw display (would-be)", fmtI(rs.MisorderedDisplays), "-", "-", "-", "0", fmtU(rs.Msgs),
	})
	t.Rows = append(t.Rows, []string{
		"References DB", "0",
		fmtMs(rs.DisplayLatency.Mean()), fmtMs(rs.UnrelatedLatency.Mean()),
		fmtMs(rs.UnrelatedLatency.Quantile(0.99)),
		fmtI(rs.PeakOrderingState), fmtU(rs.Msgs),
	})
	t.Rows = append(t.Rows, []string{
		"causal group", fmtI(rc.MisorderedDisplays),
		fmtMs(rc.DisplayLatency.Mean()), fmtMs(rc.UnrelatedLatency.Mean()),
		fmtMs(rc.UnrelatedLatency.Quantile(0.99)),
		fmtI(rc.PeakOrderingState), fmtU(rc.Msgs),
	})
	t.Notes = append(t.Notes,
		"'raw display' and 'References DB' are the same run: the DB counts the misorders it heals",
		"unrelated = articles with no References field; their causal-group delay is collateral")
	return t
}
