package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"catocs/internal/chaos"
)

// E24 — dynamic membership at scale: what one churn wave costs each
// substrate as the group grows.
//
// Each (substrate, N) cell drives the same reconfiguration schedule —
// a sender crashes and later recovers, two fresh processes join, one
// of them leaves — against a group of N members with background
// traffic, and measures the three costs ISSUE's tentpole threads
// through the stack:
//
//   - availability: the longest delivery silence any initial member
//     suffers (E18's metric). The membership substrate pays a
//     suspect-timeout detection window before every exclusion; the
//     scalecast arm is re-wired by an omniscient operator at the
//     instant of the fault, so its window is the best case any
//     external reconfiguration service could achieve.
//   - state transfer: bytes shipped to make a joiner
//     delivery-equivalent to the survivors. Structurally zero for
//     scalecast — a joiner sees the causal future only, and a
//     recovered process restarts empty; rebuilding state is pushed to
//     the application, the paper's §4.4 position taken to its limit.
//   - metadata per reconfiguration: membership-protocol messages
//     (flush/view traffic) per installed view for the CATOCS stack,
//     vs the extra link-control traffic (barriers, acks) a rewire
//     costs scalecast after subtracting a churn-free control run.
//
// The headline is the §5 trade at N=512: the membership stack's costs
// grow with the group — O(N) flush messages per view on top of the
// O(N²)-message, O(N³)-work stability acks that price every cast —
// while scalecast's reconfiguration cost stays near-constant, having
// externalised exactly the state and failure services the membership
// stack provides.

// E24Point is one (substrate, N) measurement.
type E24Point struct {
	Substrate string `json:"substrate"`
	N         int    `json:"n"`
	// Reconfigs: installed views (multicast) / applied rewires
	// (scalecast) — 5 for the full schedule when none coalesce.
	Reconfigs uint64 `json:"reconfigs"`
	Sent      uint64 `json:"sent"`
	Applied   uint64 `json:"applied"`
	// Dups: replayed casts absorbed by application-level IDs (the
	// at-least-once rejoin cost; always 0 for scalecast, which replays
	// nothing and loses the crashed member's unstable casts instead).
	Dups       uint64 `json:"dups"`
	Violations int    `json:"violations"`
	// TransferBytes: donor→joiner snapshot volume.
	TransferBytes uint64 `json:"transfer_bytes"`
	// MetaPerReconfig: membership metadata messages per reconfiguration.
	MetaPerReconfig float64 `json:"meta_per_reconfig"`
	UnavailMax      float64 `json:"unavail_max_s"`
	UnavailMean     float64 `json:"unavail_mean_s"`
	Digest          uint64  `json:"digest"`
}

// JSON renders the point as one JSON line for machine consumers.
func (p E24Point) JSON() string {
	b, _ := json.Marshal(p)
	return string(b)
}

// E24Sizes is the published sweep.
var E24Sizes = []int{32, 128, 512}

// e24Tuning scales the protocol timers with N. Monitor heartbeats are
// N² per interval and stability acks N² per cast burst, so the larger
// groups run slower timers and lighter traffic — the experiment holds
// the *schedule* fixed, not the load.
func e24Tuning(n int) (cfg chaos.ChurnConfig, step time.Duration) {
	switch {
	case n <= 32:
		step = 100 * time.Millisecond
		cfg = chaos.ChurnConfig{MsgsPer: 30, Interval: 20 * time.Millisecond, Senders: 4}
	case n <= 128:
		step = 100 * time.Millisecond
		cfg = chaos.ChurnConfig{
			MsgsPer: 30, Interval: 50 * time.Millisecond, Senders: 4,
			Heartbeat: 25 * time.Millisecond, Suspect: 100 * time.Millisecond,
			AckInterval: 50 * time.Millisecond, NackDelay: 60 * time.Millisecond,
		}
	default:
		step = 1000 * time.Millisecond
		cfg = chaos.ChurnConfig{
			MsgsPer: 10, Interval: 100 * time.Millisecond, Senders: 2,
			Heartbeat: 250 * time.Millisecond, Suspect: 1000 * time.Millisecond,
			AckInterval: 100 * time.Millisecond, NackDelay: 150 * time.Millisecond,
			Settle: 4 * time.Second,
		}
	}
	cfg.N = n
	return cfg, step
}

// e24Script is the fixed churn wave, scaled so every op outlives the
// detection timeout of the slower large-N timers: crash a sender,
// recover it through its WAL, admit two joiners, lose one gracefully.
func e24Script(n int, step time.Duration) chaos.Script {
	text := fmt.Sprintf("@%s crash 2; @%s recover 2; @%s join %d; @%s join %d; @%s leave %d",
		step, 5*step, 8*step, n, 10*step, n+1, 14*step, n+1)
	s, err := chaos.ParseScript(text)
	if err != nil {
		panic(err)
	}
	return s
}

// RunE24 measures one (substrate, N) cell. Substrate is "multicast"
// (the atomic cbcast + membership stack) or "scalecast".
func RunE24(substrate string, n int, seed int64) E24Point {
	cfg, step := e24Tuning(n)
	cfg.Seed = seed
	cfg.Script = e24Script(n, step)
	pt := E24Point{Substrate: substrate, N: n}
	switch substrate {
	case "multicast":
		res := chaos.RunChurn(cfg)
		pt.Reconfigs = res.Epochs
		pt.Sent, pt.Applied, pt.Dups = res.Sent, res.Applied, res.Dups
		pt.Violations = len(res.Violations)
		pt.TransferBytes = res.TransferBytes
		pt.MetaPerReconfig = res.MetadataPerEpoch()
		pt.UnavailMax, pt.UnavailMean = res.UnavailMax.Seconds(), res.UnavailMean.Seconds()
		pt.Digest = res.Digest
	case "scalecast":
		res := chaos.RunScalecastChurn(cfg)
		control := cfg
		control.Script = chaos.Script{}
		base := chaos.RunScalecastChurn(control)
		pt.Reconfigs = res.Epochs
		pt.Sent, pt.Applied, pt.Dups = res.Sent, res.Applied, res.Dups
		pt.TransferBytes = 0
		if res.Epochs > 0 && res.FlushMsgs > base.FlushMsgs {
			pt.MetaPerReconfig = float64(res.FlushMsgs-base.FlushMsgs) / float64(res.Epochs)
		}
		pt.UnavailMax, pt.UnavailMean = res.UnavailMax.Seconds(), res.UnavailMean.Seconds()
		pt.Digest = res.Digest
	default:
		panic("e24: unknown substrate " + substrate)
	}
	return pt
}

// RunE24Sweep measures both substrates at each size.
func RunE24Sweep(sizes []int, seed int64) []E24Point {
	var pts []E24Point
	for _, n := range sizes {
		for _, sub := range []string{"multicast", "scalecast"} {
			pts = append(pts, RunE24(sub, n, seed))
		}
	}
	return pts
}

// TableE24 runs the sweep and renders it.
func TableE24(sizes []int, seed int64) *Table {
	t := &Table{
		ID:    "E24",
		Title: "Dynamic membership at scale: churn cost per substrate (§4.4, §5, §6)",
		Claim: "membership, state transfer, and rejoin are services the communication layer can provide — at availability windows and per-view metadata that grow with the group — or push to the application, which is scalecast's (and the paper's) answer",
		Headers: []string{"substrate", "N", "reconfigs", "sent", "applied", "dups",
			"violations", "transfer B", "meta/reconfig", "unavail max ms", "unavail mean ms"},
	}
	for _, pt := range RunE24Sweep(sizes, seed) {
		t.Rows = append(t.Rows, []string{
			pt.Substrate, fmtI(pt.N), fmtU(pt.Reconfigs), fmtU(pt.Sent), fmtU(pt.Applied),
			fmtU(pt.Dups), fmtI(pt.Violations), fmtU(pt.TransferBytes),
			fmtF(pt.MetaPerReconfig), fmtMs(pt.UnavailMax), fmtMs(pt.UnavailMean),
		})
	}
	t.Notes = append(t.Notes,
		"schedule per cell: crash a sender, recover it via WAL replay + snapshot transfer, admit two joiners, one leaves — op spacing and protocol timers scale with N (heartbeats are N² per interval, stability acks N² per cast burst)",
		"multicast rows: churn oracles active (joiner-state equivalence, no-stale-epoch delivery, rejoin liveness) — violations would print; transfer B is donor snapshot volume, meta/reconfig is flush+view messages per installed view",
		"scalecast rows: an omniscient operator rewires the overlay at the instant of each op (zero detection latency — the lower bound for any external reconfiguration service); no oracle can demand store equivalence because a recovered process restarts empty — state transfer and rejoin are the application's problem, the §4.4 position at its limit",
		"scalecast meta/reconfig is the rewire-attributable link-control traffic (barriers, acks) after subtracting a churn-free control run",
		"the crashed multicast sender replays its unstable WAL suffix on rejoin; survivors absorb the replay as dups — §4.4's at-least-once reconciliation made visible")
	return t
}
