package experiments

import (
	"fmt"
	"time"

	"catocs/internal/replica"
	"catocs/internal/sim"
	"catocs/internal/transport"
)

// E9 — replicated data (§4.3/§4.4). The cbcast/Deceit design at write
// safety levels k = 0, 1, R-1 against the HARP-style transactional
// group, on equal networks. Measured: write latency, time for the
// whole write stream to drain to every replica, updates lost when the
// primary crashes mid-stream, and throughput with concurrent updaters
// (transactions only — the CATOCS design admits a single primary).

// E9CatocsPoint reports one cbcast configuration.
type E9CatocsPoint struct {
	Replicas    int
	WriteSafety int
	WriteLatMs  float64
	DrainMs     float64
	LostUpdates int
}

// RunE9Catocs runs a serial primary writing writes updates, optionally
// crashing the primary immediately after the last write is issued.
func RunE9Catocs(replicas, writes, writeSafety int, crashPrimary bool, seed int64) E9CatocsPoint {
	k := sim.NewKernel(seed)
	k.SetEventLimit(50_000_000)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: time.Millisecond})
	mux := transport.NewMux(net)
	nodes := make([]transport.NodeID, replicas)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
	}
	reps := replica.NewCatocsGroup(mux, nodes, writeSafety)

	issued := 0
	var issue func()
	issue = func() {
		if issued == writes {
			if crashPrimary {
				net.Crash(nodes[0])
				reps[0].Member().Close()
			}
			return
		}
		issued++
		key := fmt.Sprintf("k%d", issued)
		reps[0].Write(key, issued, func() {
			k.After(time.Millisecond, issue)
		})
		if writeSafety == 0 {
			// Asynchronous mode: completion is immediate, so the write
			// callback above already fired; pace the stream explicitly.
			k.After(time.Millisecond, func() {})
		}
	}
	k.At(0, issue)
	horizon := 10 * time.Second
	k.RunUntil(horizon)
	for _, r := range reps {
		r.Member().Close()
	}

	pt := E9CatocsPoint{Replicas: replicas, WriteSafety: writeSafety}
	pt.WriteLatMs = reps[0].WriteLatency.Mean() * 1000
	// Drain: last time all live replicas had applied everything — we
	// approximate with the count of applied updates at the survivors.
	minApplied := writes
	start := 1
	if !crashPrimary {
		start = 0
	}
	for i := start; i < replicas; i++ {
		applied := int(reps[i].Applied.Value())
		if applied < minApplied {
			minApplied = applied
		}
	}
	pt.LostUpdates = issued - minApplied
	pt.DrainMs = float64(k.Now().Microseconds()) / 1000.0
	return pt
}

// E9TxPoint reports one transactional configuration.
type E9TxPoint struct {
	Replicas   int
	Updaters   int
	WriteLatMs float64
	ElapsedMs  float64
	Committed  uint64
	Throughput float64 // commits per simulated second
}

// RunE9Tx runs U concurrent updaters, each committing writes/U
// transactions back-to-back.
func RunE9Tx(replicas, writes, updaters int, seed int64) E9TxPoint {
	k := sim.NewKernel(seed)
	k.SetEventLimit(50_000_000)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: time.Millisecond})
	mux := transport.NewMux(net)
	nodes := make([]transport.NodeID, replicas)
	for i := range nodes {
		nodes[i] = transport.NodeID(i + 100)
	}
	g := replica.NewTxGroup(mux, 0, nodes)
	g.Coordinator().PrepareTimeout = 200 * time.Millisecond

	var lastDone time.Duration
	perUpdater := writes / updaters
	for u := 0; u < updaters; u++ {
		u := u
		n := 0
		var issue func()
		issue = func() {
			if n == perUpdater {
				return
			}
			n++
			key := fmt.Sprintf("u%d-k%d", u, n)
			g.Write(key, n, func(ok bool) {
				lastDone = k.Now()
				k.After(time.Millisecond, issue)
			})
		}
		k.At(time.Duration(u)*100*time.Microsecond, issue)
	}
	k.RunUntil(30 * time.Second)

	pt := E9TxPoint{Replicas: replicas, Updaters: updaters}
	pt.WriteLatMs = g.WriteLatMs.Mean()
	pt.Committed = g.Commits.Value()
	pt.ElapsedMs = float64(lastDone.Microseconds()) / 1000.0
	if lastDone > 0 {
		pt.Throughput = float64(pt.Committed) / lastDone.Seconds()
	}
	return pt
}

// TableE9 renders the comparison.
func TableE9(replicas, writes int, seed int64) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Replicated data: cbcast write-safety levels vs optimized transactions (§4.4)",
		Claim:   "k=0 is asynchronous but loses completed writes on primary crash; k>=1 is effectively synchronous; transactions keep grouped atomic updates and concurrent updaters",
		Headers: []string{"design", "write lat ms", "lost updates after crash", "commits", "throughput/s"},
	}
	for _, ks := range []int{0, 1, replicas - 1} {
		healthy := RunE9Catocs(replicas, writes, ks, false, seed)
		crashed := RunE9Catocs(replicas, writes, ks, true, seed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("cbcast k=%d", ks),
			fmtF(healthy.WriteLatMs),
			fmtI(crashed.LostUpdates),
			fmtI(writes),
			"", // single primary; throughput meaningful only vs tx below
		})
	}
	for _, u := range []int{1, 4} {
		pt := RunE9Tx(replicas, writes, u, seed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2PC tx U=%d", u),
			fmtF(pt.WriteLatMs),
			"0",
			fmtU(pt.Committed),
			fmtF(pt.Throughput),
		})
	}
	t.Notes = append(t.Notes,
		"lost updates: primary crashes immediately after issuing the full stream; k=0 reported all writes complete anyway",
		"2PC writes never report complete before surviving a crash of any single participant (availability-list retry)")
	return t
}
