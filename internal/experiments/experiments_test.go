package experiments

import (
	"strings"
	"testing"
	"time"

	"catocs/internal/multicast"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo", Claim: "c",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	out := tab.Render()
	for _, want := range []string{"X — demo", "paper: c", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE1CausalHolds(t *testing.T) {
	for s := int64(1); s <= 10; s++ {
		r := RunE1(s)
		if !r.CausalOrderHeld {
			t.Fatalf("seed %d: causal multicast failed to order m1 before m2", s)
		}
	}
	tab := TableE1(10)
	if len(tab.Rows) != 1 {
		t.Fatal("E1 table malformed")
	}
}

func TestE2E3E4AnomalyShapes(t *testing.T) {
	// The central qualitative claims: anomalies occur under CATOCS and
	// never under the state-level scheme.
	e2 := TableE2(20, 1000)
	for _, row := range e2.Rows {
		if row[2] == "0" {
			t.Fatalf("E2 %s: no raw anomalies", row[0])
		}
		if row[3] != "0" {
			t.Fatalf("E2 %s: versioned observer misled %s times", row[0], row[3])
		}
	}
	e3 := TableE3(20, 2000)
	for _, row := range e3.Rows {
		if row[3] != "0" {
			t.Fatalf("E3 %s: temporal observer misled", row[0])
		}
	}
	e4 := TableE4(10, 3000)
	for _, row := range e4.Rows {
		if row[2] == "0" && row[3] == "0" {
			t.Fatalf("E4 %s: no raw anomalies", row[0])
		}
		if row[4] != "0" || row[5] != "0" {
			t.Fatalf("E4 %s: dependency display anomalous", row[0])
		}
	}
}

func TestE5FalseCausalityShape(t *testing.T) {
	small := RunE5(2, 15, 5*time.Millisecond, 8*time.Millisecond, 7)
	large := RunE5(12, 15, 5*time.Millisecond, 8*time.Millisecond, 7)
	gapSmall := small.Mean[multicast.Causal] - small.Mean[multicast.FIFO]
	gapLarge := large.Mean[multicast.Causal] - large.Mean[multicast.FIFO]
	if gapLarge <= 0 {
		t.Fatalf("no false-causality delay at N=12: gap=%v", gapLarge)
	}
	if gapLarge <= gapSmall {
		t.Fatalf("false-causality gap did not grow with N: %v (N=2) vs %v (N=12)", gapSmall, gapLarge)
	}
	// Causal latency must dominate unordered on the same schedule.
	if large.Mean[multicast.Causal] < large.Mean[multicast.Unordered] {
		t.Fatal("causal delivery cannot be faster than unordered on the same draws")
	}
}

func TestE5HeaderOverheadGrowsWithN(t *testing.T) {
	small := RunE5Header(4, 15, 1_000_000, 7)
	large := RunE5Header(32, 15, 1_000_000, 7)
	if small.OverheadPct <= 0 {
		t.Fatalf("no header overhead measured: %+v", small)
	}
	if large.OverheadPct <= small.OverheadPct {
		t.Fatalf("header overhead did not grow with N: %.2f%% vs %.2f%%",
			small.OverheadPct, large.OverheadPct)
	}
}

func TestE5PiggybackAmplification(t *testing.T) {
	pt := RunE5Piggyback(8, 15, 7)
	if pt.AmplificationPct <= 0 {
		t.Fatal("piggyback model measured no amplification; no reorder pressure")
	}
	if pt.ArrivalsWithDeps == 0 || pt.ArrivalsWithDeps >= pt.TotalArrivals {
		t.Fatalf("blocked arrivals %d of %d implausible", pt.ArrivalsWithDeps, pt.TotalArrivals)
	}
}

func TestE6BufferGrowthShape(t *testing.T) {
	small := RunE6(4, 30, 5*time.Millisecond, 0.05, 11)
	large := RunE6(12, 30, 5*time.Millisecond, 0.05, 11)
	if small.PeakBufPerNode == 0 || large.PeakBufPerNode == 0 {
		t.Fatal("no buffering measured")
	}
	if large.PeakBufPerNode <= small.PeakBufPerNode {
		t.Fatalf("per-node buffering did not grow: %d (N=4) vs %d (N=12)",
			small.PeakBufPerNode, large.PeakBufPerNode)
	}
	if large.TotalPeakBuf <= 2*small.TotalPeakBuf {
		t.Fatalf("system-wide buffering grew too slowly: %d vs %d",
			small.TotalPeakBuf, large.TotalPeakBuf)
	}
	if large.PeakGraphArcs <= small.PeakGraphArcs {
		t.Fatalf("causal-graph arcs did not grow: %d vs %d",
			small.PeakGraphArcs, large.PeakGraphArcs)
	}
}

func TestE6TrafficShape(t *testing.T) {
	// Lossless: the peak is pure stability lag, so burstiness must
	// dominate clearly on every seed.
	for _, seed := range []int64{1, 41} {
		uniform := RunE6Shaped(8, 40, "uniform", 0, seed)
		bursty := RunE6Shaped(8, 40, "bursty", 0, seed)
		if uniform.PeakBufPerNode == 0 || bursty.PeakBufPerNode == 0 {
			t.Fatal("no buffering measured")
		}
		if bursty.PeakBufPerNode < 2*uniform.PeakBufPerNode {
			t.Fatalf("seed %d: bursty peak %d should clearly exceed uniform %d",
				seed, bursty.PeakBufPerNode, uniform.PeakBufPerNode)
		}
	}
}

func TestE7ViewChangeShape(t *testing.T) {
	small := RunE7(4, 13)
	large := RunE7(10, 13)
	if small.FlushMsgs == 0 || large.FlushMsgs == 0 {
		t.Fatal("flush produced no messages; view change did not run")
	}
	if large.FlushMsgs <= small.FlushMsgs {
		t.Fatalf("flush cost did not grow with N: %d vs %d", small.FlushMsgs, large.FlushMsgs)
	}
	if small.MeanSuppressMs <= 0 || small.RecoveryMs <= 0 {
		t.Fatalf("suppression/recovery not measured: %+v", small)
	}
}

func TestE7JoinShape(t *testing.T) {
	small := RunE7Join(4, 43)
	large := RunE7Join(10, 43)
	if small.AdmissionMs <= 0 || large.AdmissionMs <= 0 {
		t.Fatalf("join not admitted: %+v %+v", small, large)
	}
	if large.FlushMsgs <= small.FlushMsgs {
		t.Fatalf("join flush cost did not grow with N: %d vs %d",
			small.FlushMsgs, large.FlushMsgs)
	}
}

func TestE8DeadlockShape(t *testing.T) {
	pt := RunE8(5, 100, 25*time.Millisecond, 17)
	if !pt.VRDetected || !pt.STDetected {
		t.Fatalf("a detector missed the deadlock: vr=%v st=%v", pt.VRDetected, pt.STDetected)
	}
	if pt.VRFalse != 0 || pt.STFalse != 0 {
		t.Fatalf("false deadlocks: vr=%d st=%d", pt.VRFalse, pt.STFalse)
	}
	if pt.VRMsgs <= 2*pt.STMsgs {
		t.Fatalf("expected clear message separation: vr=%d st=%d", pt.VRMsgs, pt.STMsgs)
	}
}

func TestE9ReplicationShape(t *testing.T) {
	// k=0 loses updates on primary crash; k=1 does not claim completion
	// it cannot honour.
	lossy := RunE9Catocs(3, 20, 0, true, 19)
	if lossy.LostUpdates == 0 {
		t.Fatal("k=0 crash lost nothing; durability anomaly not reproduced")
	}
	safe := RunE9Catocs(3, 20, 1, false, 19)
	if safe.WriteLatMs <= 0 {
		t.Fatal("k=1 write latency not measured")
	}
	tx1 := RunE9Tx(3, 20, 1, 19)
	tx4 := RunE9Tx(3, 20, 4, 19)
	if tx1.Committed != 20 || tx4.Committed != 20 {
		t.Fatalf("tx commits: %d / %d, want 20", tx1.Committed, tx4.Committed)
	}
	if tx4.Throughput <= tx1.Throughput {
		t.Fatalf("concurrent updaters did not raise throughput: %v vs %v",
			tx1.Throughput, tx4.Throughput)
	}
}

func TestE12RealtimeShape(t *testing.T) {
	pt := RunE12(0.1, 23)
	if pt.StateStaleMs <= 0 || pt.CatocsStaleMs <= 0 {
		t.Fatalf("staleness not measured: %+v", pt)
	}
	if pt.CatocsStaleMs <= pt.StateStaleMs {
		t.Fatalf("CATOCS staleness %v should exceed temporal %v under loss",
			pt.CatocsStaleMs, pt.StateStaleMs)
	}
	if pt.CatocsRMS <= pt.StateRMS {
		t.Fatalf("CATOCS tracking error %v should exceed temporal %v",
			pt.CatocsRMS, pt.StateRMS)
	}
}

func TestE13DurabilityShape(t *testing.T) {
	small := RunE13(4, 30, 31)
	large := RunE13(12, 30, 31)
	if !small.RecoveredOK || !large.RecoveredOK {
		t.Fatal("state-log recovery failed")
	}
	if small.StateAppends != 30 || large.StateAppends != 30 {
		t.Fatalf("state appends should equal writes: %d / %d", small.StateAppends, large.StateAppends)
	}
	// Communication logging scales with N; state logging does not.
	if large.CommAppends <= small.CommAppends {
		t.Fatalf("comm appends did not grow with N: %d vs %d", small.CommAppends, large.CommAppends)
	}
	if large.CommBytes < 5*large.StateBytes {
		t.Fatalf("expected comm log to dwarf state log at N=12: %d vs %d bytes",
			large.CommBytes, large.StateBytes)
	}
}

func TestE14NameServiceShape(t *testing.T) {
	g := RunE14Gossip(8, 24, 37)
	c := RunE14Catocs(8, 24, 37)
	if g.ConvergedMs <= 0 || g.Diverged != 0 {
		t.Fatalf("gossip did not converge: %+v", g)
	}
	if g.ConflictsResolved == 0 {
		t.Fatal("no undos recorded despite concurrent duplicate binds")
	}
	if c.Diverged == 0 {
		t.Fatal("causal group converged on concurrent binds; it should diverge without LWW")
	}
	if c.StateBytesPerNode <= g.StateBytesPerNode {
		t.Fatalf("CATOCS per-node state %d should dwarf gossip's %d",
			c.StateBytesPerNode, g.StateBytesPerNode)
	}
}

func TestE15CausalMemoryShape(t *testing.T) {
	sc, to := RunE15(8, 24, 47)
	if sc.Msgs == 0 || to.Msgs == 0 {
		t.Fatal("no traffic measured")
	}
	if to.Msgs < 2*sc.Msgs {
		t.Fatalf("total-order causal memory should cost >=2x the messages: %d vs %d",
			to.Msgs, sc.Msgs)
	}
}

func TestAblationTotalShape(t *testing.T) {
	pt := RunAblationTotal(6, 10, 29)
	if pt.SeqMeanMs <= 0 || pt.AgreeMeanMs <= 0 {
		t.Fatalf("latencies not measured: %+v", pt)
	}
	if pt.SequencerLoadPct <= 100.0/6.0 {
		t.Fatalf("sequencer load %v%% should exceed a fair share", pt.SequencerLoadPct)
	}
}

func TestTablesRenderWithoutPanic(t *testing.T) {
	// Small parameterizations of every table builder.
	tables := []*Table{
		TableE1(3),
		TableE2(5, 1),
		TableE3(5, 2),
		TableE4(3, 3),
		TableE5([]int{2, 4}, 8, 4),
		TableE5Piggyback([]int{4}, 8, 4),
		TableE5Header([]int{4}, 8, 1_000_000, 4),
		TableE6([]int{4}, 15, 0.05, 5),
		TableE6Partition([]int{1, 2}, 3, 10, 6),
		TableE6Traffic(4, 15, 6),
		TableE7([]int{4}, 7),
		TableE7Join([]int{4}, 7),
		TableE8([]int{4}, 20, 8),
		TableE9(3, 10, 9),
		TableE10([]int{3}, 3, 10),
		TableE11(11),
		TableE12([]float64{0.05}, 12),
		TableE13([]int{4}, 16, 14),
		TableE14([]int{4}, 12, 15),
		TableE15([]int{4}, 12, 16),
		TableAblationTotal([]int{4}, 6, 13),
	}
	for _, tab := range tables {
		out := tab.Render()
		if len(out) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("table %s empty", tab.ID)
		}
	}
}

func TestE16ConstantVsLinearMetadata(t *testing.T) {
	// The tentpole claim: CBCAST's per-packet control bytes grow
	// linearly with N; scalecast's stay constant. Completeness must
	// hold on both substrates (senders × msgs × N deliveries).
	pts := RunE16Sweep([]int{8, 32}, 3, 1)
	byKey := map[string]E16Point{}
	for _, p := range pts {
		byKey[p.Substrate+"-"+fmtI(p.N)] = p
		wantDeliveries := uint64(e16Senders(p.N) * 3 * p.N)
		if p.Deliveries != wantDeliveries {
			t.Fatalf("%s N=%d delivered %d, want %d", p.Substrate, p.N, p.Deliveries, wantDeliveries)
		}
	}
	cb8, cb32 := byKey["cbcast-8"], byKey["cbcast-32"]
	sc8, sc32 := byKey["scalecast-8"], byKey["scalecast-32"]
	// CBCAST header grows by ~8 bytes per member: 4x the group, ~+192B.
	if cb32.CtrlBytesPerPkt < cb8.CtrlBytesPerPkt+150 {
		t.Fatalf("cbcast ctrl/pkt did not grow with N: %.1f -> %.1f",
			cb8.CtrlBytesPerPkt, cb32.CtrlBytesPerPkt)
	}
	// Scalecast stays within a few bytes (mix of acks vs data shifts).
	if diff := sc32.CtrlBytesPerPkt - sc8.CtrlBytesPerPkt; diff > 10 || diff < -10 {
		t.Fatalf("scalecast ctrl/pkt not constant: %.1f -> %.1f",
			sc8.CtrlBytesPerPkt, sc32.CtrlBytesPerPkt)
	}
	// And at N=32 the flood header is already far below the vclock one.
	if sc32.CtrlBytesPerPkt*2 > cb32.CtrlBytesPerPkt {
		t.Fatalf("scalecast (%.1f B/pkt) should be well under cbcast (%.1f B/pkt) at N=32",
			sc32.CtrlBytesPerPkt, cb32.CtrlBytesPerPkt)
	}
	tab := TableE16([]int{8}, 2, 1)
	if len(tab.Rows) != 2 || len(tab.Headers) != 10 {
		t.Fatal("E16 table malformed")
	}
	for _, p := range pts {
		if p.JSON() == "" || !strings.Contains(p.JSON(), "\"substrate\"") {
			t.Fatal("E16 JSON malformed")
		}
	}
}
