package experiments

import (
	"time"

	"catocs/internal/metrics"
	"catocs/internal/multicast"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// E5 — false causality (§3.4). N senders multicast semantically
// independent messages. Under CBCAST every message's stamp covers all
// messages its sender had delivered, so network jitter makes messages
// wait for unrelated predecessors. The experiment measures delivery
// latency under unordered, FIFO, and causal disciplines on the
// identical workload and network schedule: the causal-minus-FIFO gap
// is pure false-causality delay, because the workload has no
// application-level cross-sender dependencies at all.

// E5Point is one sweep point.
type E5Point struct {
	N            int
	Mean         map[multicast.Ordering]float64 // seconds
	P99          map[multicast.Ordering]float64
	PeakHoldback map[multicast.Ordering]int64
}

// RunE5 measures one group size.
func RunE5(n, msgsPerSender int, interval, jitter time.Duration, seed int64) E5Point {
	pt := E5Point{
		N:            n,
		Mean:         make(map[multicast.Ordering]float64),
		P99:          make(map[multicast.Ordering]float64),
		PeakHoldback: make(map[multicast.Ordering]int64),
	}
	for _, ord := range []multicast.Ordering{multicast.Unordered, multicast.FIFO, multicast.Causal} {
		k := sim.NewKernel(seed) // same seed: same network draws per discipline
		k.SetEventLimit(50_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: jitter})
		nodes := make([]transport.NodeID, n)
		for i := range nodes {
			nodes[i] = transport.NodeID(i)
		}
		var lat metrics.Histogram
		members := multicast.NewGroup(net, nodes, multicast.Config{Group: "e5", Ordering: ord},
			func(rank vclock.ProcessID) multicast.DeliverFunc {
				return func(d multicast.Delivered) { lat.Observe(d.Latency.Seconds()) }
			})
		for s := 0; s < n; s++ {
			for i := 0; i < msgsPerSender; i++ {
				s, i := s, i
				k.At(time.Duration(i)*interval+time.Duration(s)*time.Millisecond, func() {
					members[s].Multicast(i, 16)
				})
			}
		}
		k.Run()
		pt.Mean[ord] = lat.Mean()
		pt.P99[ord] = lat.Quantile(0.99)
		var peak int64
		for _, m := range members {
			if m.HoldbackGauge.Max() > peak {
				peak = m.HoldbackGauge.Max()
			}
		}
		pt.PeakHoldback[ord] = peak
	}
	return pt
}

// TableE5 sweeps group size.
func TableE5(sizes []int, msgsPerSender int, seed int64) *Table {
	t := &Table{
		ID:    "E5",
		Title: "False causality: delivery delay of semantically independent traffic (§3.4)",
		Claim: "CBCAST delays messages behind potentially- but not actually-causal predecessors; overhead grows with group size",
		Headers: []string{"N", "unordered mean ms", "fifo mean ms", "causal mean ms",
			"causal p99 ms", "causal-fifo gap ms", "peak causal holdback"},
	}
	for _, n := range sizes {
		pt := RunE5(n, msgsPerSender, 5*time.Millisecond, 8*time.Millisecond, seed)
		gap := pt.Mean[multicast.Causal] - pt.Mean[multicast.FIFO]
		t.Rows = append(t.Rows, []string{
			fmtI(n),
			fmtMs(pt.Mean[multicast.Unordered]),
			fmtMs(pt.Mean[multicast.FIFO]),
			fmtMs(pt.Mean[multicast.Causal]),
			fmtMs(pt.P99[multicast.Causal]),
			fmtMs(gap),
			fmtI(int(pt.PeakHoldback[multicast.Causal])),
		})
	}
	t.Notes = append(t.Notes, "identical workload and link schedule per row; the causal-fifo gap is pure false-causality delay")
	return t
}

// E5PiggybackPoint compares the delay-queue CBCAST against the
// footnote-4 alternative: appending causal predecessors to each
// message instead of delaying delivery. We model the alternative's
// cost analytically from the same run: every message would carry its
// undelivered predecessors, so the traffic amplification equals
// (bytes of predecessors piggybacked) / (base bytes) — measured from
// the holdback occupancy at each arrival.
type E5PiggybackPoint struct {
	N                int
	DelayMs          float64 // CBCAST mean added delay vs unordered
	AmplificationPct float64 // extra bytes the piggyback variant ships
	ArrivalsWithDeps int
	TotalArrivals    int
}

// RunE5Piggyback measures the ablation trade at one group size.
func RunE5Piggyback(n, msgsPerSender int, seed int64) E5PiggybackPoint {
	k := sim.NewKernel(seed)
	k.SetEventLimit(50_000_000)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: 8 * time.Millisecond})
	nodes := make([]transport.NodeID, n)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
	}
	var lat metrics.Histogram
	var arrivals, withDeps int
	var baseBytes, extraBytes float64
	var members []*multicast.Member
	members = multicast.NewGroup(net, nodes, multicast.Config{Group: "e5p", Ordering: multicast.Causal},
		func(rank vclock.ProcessID) multicast.DeliverFunc {
			m := rank
			return func(d multicast.Delivered) {
				lat.Observe(d.Latency.Seconds())
				arrivals++
				baseBytes += 64
				// Piggyback model: at the moment of this delivery, the
				// messages still in the member's holdback queue are the
				// ones a piggybacking sender would have had to attach.
				if pend := members[m].PendingCount(); pend > 0 {
					withDeps++
					extraBytes += float64(64 * pend)
				}
			}
		})
	for s := 0; s < n; s++ {
		for i := 0; i < msgsPerSender; i++ {
			s, i := s, i
			k.At(time.Duration(i)*5*time.Millisecond+time.Duration(s)*time.Millisecond, func() {
				members[s].Multicast(i, 16)
			})
		}
	}
	k.Run()
	amp := 0.0
	if baseBytes > 0 {
		amp = 100 * extraBytes / baseBytes
	}
	return E5PiggybackPoint{
		N:                n,
		DelayMs:          lat.Mean() * 1000,
		AmplificationPct: amp,
		ArrivalsWithDeps: withDeps,
		TotalArrivals:    arrivals,
	}
}

// E5HeaderPoint measures the §3.4 per-message header cost at line
// rate: the same payload stream under unordered (bare header) and
// causal (vector-clock header) delivery over a bandwidth-limited
// link, plus a full-vs-delta clock encoding comparison under a
// sparse-writer workload. The delta encoding carries only the clock
// entries that changed since the sender's previous cast — O(active
// writers) — so its win shows where few of the N members write; with
// all N writing concurrently every entry changes and deltas degrade
// to (slightly worse than) full clocks. Ctrl bytes are measured from
// the transport's accounting, not computed from the clock width, so
// they include every protocol frame actually sent.
type E5HeaderPoint struct {
	N               int
	UnorderedMeanMs float64
	CausalMeanMs    float64
	OverheadPct     float64
	HeaderBytes     int
	// Sparse-writer arms: min(4, N) active senders, same total
	// message count, full vs delta clock encoding.
	SparseFullCtrlBpp  float64 // measured ctrl bytes per packet, full clocks
	SparseDeltaCtrlBpp float64 // measured ctrl bytes per packet, delta clocks
}

// RunE5Header measures one group size.
func RunE5Header(n, msgsPerSender int, bandwidth int, seed int64) E5HeaderPoint {
	pt := E5HeaderPoint{N: n, HeaderBytes: 8 * n}
	type arm struct {
		tag     string
		ord     multicast.Ordering
		delta   bool
		senders int
	}
	sparse := 4
	if n < sparse {
		sparse = n
	}
	for _, a := range []arm{
		{"unordered", multicast.Unordered, false, n},
		{"causal", multicast.Causal, false, n},
		{"sparse-full", multicast.Causal, false, sparse},
		{"sparse-delta", multicast.Causal, true, sparse},
	} {
		k := sim.NewKernel(seed)
		k.SetEventLimit(50_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{
			BaseDelay: time.Millisecond,
			Bandwidth: bandwidth,
		})
		nodes := make([]transport.NodeID, n)
		for i := range nodes {
			nodes[i] = transport.NodeID(i)
		}
		var lat metrics.Histogram
		members := multicast.NewGroup(net, nodes,
			multicast.Config{Group: "e5h", Ordering: a.ord, DeltaClocks: a.delta},
			func(rank vclock.ProcessID) multicast.DeliverFunc {
				return func(d multicast.Delivered) { lat.Observe(d.Latency.Seconds()) }
			})
		for s := 0; s < a.senders; s++ {
			for i := 0; i < msgsPerSender; i++ {
				s, i := s, i
				k.At(time.Duration(i)*5*time.Millisecond, func() {
					members[s].Multicast(i, 64)
				})
			}
		}
		k.Run()
		st := net.Stats()
		ctrlBpp := 0.0
		if st.Sent > 0 {
			ctrlBpp = float64(st.CtrlBytes) / float64(st.Sent)
		}
		switch a.tag {
		case "unordered":
			pt.UnorderedMeanMs = lat.Mean() * 1000
		case "causal":
			pt.CausalMeanMs = lat.Mean() * 1000
		case "sparse-delta":
			pt.SparseDeltaCtrlBpp = ctrlBpp
		default: // sparse-full
			pt.SparseFullCtrlBpp = ctrlBpp
		}
	}
	if pt.UnorderedMeanMs > 0 {
		pt.OverheadPct = 100 * (pt.CausalMeanMs - pt.UnorderedMeanMs) / pt.UnorderedMeanMs
	}
	return pt
}

// TableE5Header sweeps group size at a fixed line rate.
func TableE5Header(sizes []int, msgsPerSender, bandwidth int, seed int64) *Table {
	t := &Table{
		ID:      "E5c",
		Title:   "Per-message ordering header at line rate (§3.4)",
		Claim:   "ordering information added to every message 'will be an increasingly significant cost as networks go to ever higher transfer rates' — and the vector clock grows with the group",
		Headers: []string{"N", "header B/msg", "unordered mean ms", "causal mean ms", "overhead %", "ctrl B/pkt full", "ctrl B/pkt delta"},
	}
	for _, n := range sizes {
		pt := RunE5Header(n, msgsPerSender, bandwidth, seed)
		t.Rows = append(t.Rows, []string{
			fmtI(pt.N), fmtI(pt.HeaderBytes), fmtF(pt.UnorderedMeanMs), fmtF(pt.CausalMeanMs), fmtF(pt.OverheadPct),
			fmtF(pt.SparseFullCtrlBpp), fmtF(pt.SparseDeltaCtrlBpp),
		})
	}
	t.Notes = append(t.Notes, "lossless link with finite bandwidth: the latency gap is pure header serialization plus any delay-queue wait")
	t.Notes = append(t.Notes, "ctrl B/pkt columns compare full vs delta clock encoding (Config.DeltaClocks) under a sparse-writer workload (4 active senders): the delta header is O(active writers), not O(N) — slightly worse at N=4, where every member writes and every clock entry changes per cast")
	return t
}

// TableE5Piggyback renders the delay-vs-amplification ablation.
func TableE5Piggyback(sizes []int, msgsPerSender int, seed int64) *Table {
	t := &Table{
		ID:      "E5b",
		Title:   "Ablation: delay queue vs piggybacking causal predecessors (footnote 4)",
		Claim:   "appending earlier causal messages avoids delay but 'can significantly increase network traffic'",
		Headers: []string{"N", "causal mean ms", "piggyback traffic amplification %", "arrivals blocked on deps"},
	}
	for _, n := range sizes {
		pt := RunE5Piggyback(n, msgsPerSender, seed)
		t.Rows = append(t.Rows, []string{
			fmtI(pt.N), fmtF(pt.DelayMs), fmtF(pt.AmplificationPct),
			fmtI(pt.ArrivalsWithDeps) + "/" + fmtI(pt.TotalArrivals),
		})
	}
	return t
}
