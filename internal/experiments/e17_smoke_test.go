package experiments

import "testing"

// TestE17Smoke runs the latency-breakdown experiment small (N=8, a few
// messages per sender) on every substrate and checks the decomposition
// is internally consistent. `make verify` runs it as the E17 gate.
func TestE17Smoke(t *testing.T) {
	for _, sub := range e17Substrates {
		pt, tracer := RunE17(sub, 8, 5, 1)
		if pt.Deliveries == 0 {
			t.Fatalf("%s: no deliveries", sub)
		}
		if pt.Decomposed == 0 {
			t.Fatalf("%s: trace decomposed no deliveries (transport or member not instrumented?)", sub)
		}
		if tracer.Len() == 0 {
			t.Fatalf("%s: empty trace", sub)
		}
		if pt.NetMean <= 0 {
			t.Errorf("%s: network delay mean %.6fs, want > 0", sub, pt.NetMean)
		}
		if pt.HoldMean < 0 {
			t.Errorf("%s: negative holdback mean %.6fs", sub, pt.HoldMean)
		}
		if pt.HoldShare < 0 || pt.HoldShare > 1 {
			t.Errorf("%s: hold share %.3f outside [0,1]", sub, pt.HoldShare)
		}
		if got := pt.NetMean + pt.HoldMean; !approxEqual(got, pt.TotalMean, 1e-9) {
			t.Errorf("%s: net %.6f + hold %.6f != total %.6f", sub, pt.NetMean, pt.HoldMean, pt.TotalMean)
		}
	}
}

// TestE17SequencerHoldback checks the headline qualitative claim: the
// fixed-sequencer total order (abcast) imposes strictly more holdback
// than the pure causal delay queue at the same size and workload.
func TestE17SequencerHoldback(t *testing.T) {
	cb, _ := RunE17("cbcast", 8, 10, 1)
	ab, _ := RunE17("abcast", 8, 10, 1)
	if ab.HoldMean <= cb.HoldMean {
		t.Errorf("abcast hold mean %.6fs not above cbcast %.6fs — sequencer round-trip missing from breakdown",
			ab.HoldMean, cb.HoldMean)
	}
}

// TestE17Deterministic: same seed, same point — the trace pipeline
// must not perturb simulation determinism.
func TestE17Deterministic(t *testing.T) {
	a, _ := RunE17("scalecast", 8, 5, 42)
	b, _ := RunE17("scalecast", 8, 5, 42)
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func approxEqual(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
