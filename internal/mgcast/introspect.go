package mgcast

import (
	"catocs/internal/flowcontrol"
	"catocs/internal/obs"
)

// WindowState snapshots the node's admission window (the budget over
// its own casts still in timestamp agreement) for the live
// observability plane.
func (n *Node) WindowState() flowcontrol.WindowState {
	return flowcontrol.WindowState{
		Node:   int(n.nodes[n.rank]),
		Window: n.window,
		Policy: n.cfg.Overflow,
		Msgs:   len(n.coord),
		Bytes:  n.coordBytes,
		Parked: len(n.blocked),
	}
}

// ObsStatus implements obs.Introspector: the Skeen-style node's live
// state — holdback depth, casts still in timestamp agreement,
// admission-window occupancy, parked casts. Call from the node's
// execution context (the node performs no locking); the live plane
// consumes published copies.
func (n *Node) ObsStatus() obs.Status {
	ws := n.WindowState()
	return obs.Status{
		Component: "mgcast",
		Node:      int(n.nodes[n.rank]),
		Fields: []obs.StatusField{
			obs.DistNum("holdback_depth", float64(len(n.pending))),
			obs.DistNum("outstanding_casts", float64(len(n.coord))),
			obs.DistNum("window_occupancy", ws.Occupancy()),
			obs.DistNum("parked_casts", float64(ws.Parked)),
			obs.Num("groups", float64(len(n.cfg.Groups))),
			obs.Str("policy", n.cfg.Overflow.String()),
		},
	}
}

var _ obs.Introspector = (*Node)(nil)
