package mgcast

import (
	"math/rand"
	"testing"
	"time"

	"catocs/internal/flowcontrol"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// testWorld wires an N-node mgcast universe over a SimNet and records
// every delivery per rank.
type testWorld struct {
	k     *sim.Kernel
	net   *transport.SimNet
	nodes []*Node
	// delivered[rank] is that node's delivery log in order.
	delivered [][]Delivered
}

func newWorld(t *testing.T, seed int64, n int, link transport.LinkConfig, cfg Config) *testWorld {
	t.Helper()
	k := sim.NewKernel(seed)
	net := transport.NewSimNet(k, link)
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(i)
	}
	w := &testWorld{k: k, net: net, delivered: make([][]Delivered, n)}
	w.nodes = NewUniverse(net, ids, cfg, func(rank vclock.ProcessID) DeliverFunc {
		return func(d Delivered) {
			w.delivered[rank] = append(w.delivered[rank], d)
		}
	})
	return w
}

// overlappingGroups is the shared 6-node test topology: three groups in
// a ring, each overlapping both neighbours.
func overlappingGroups() map[string][]int {
	return map[string][]int{
		"A": {0, 1, 2},
		"B": {2, 3, 4},
		"C": {4, 5, 0},
	}
}

// checkPairwiseConsistent verifies that every two nodes deliver their
// common messages in the same relative order, and that each node's log
// is in strictly increasing final-timestamp order.
func checkPairwiseConsistent(t *testing.T, w *testWorld) {
	t.Helper()
	for rank, log := range w.delivered {
		for i := 1; i < len(log); i++ {
			if !log[i-1].Final.Less(log[i].Final) {
				t.Fatalf("node %d delivered out of final-stamp order: %s (%s) then %s (%s)",
					rank, log[i-1].ID, log[i-1].Final, log[i].ID, log[i].Final)
			}
		}
	}
	for a := range w.delivered {
		posA := make(map[MsgID]int, len(w.delivered[a]))
		for i, d := range w.delivered[a] {
			posA[d.ID] = i
		}
		for b := a + 1; b < len(w.delivered); b++ {
			var common []MsgID
			for _, d := range w.delivered[b] {
				if _, ok := posA[d.ID]; ok {
					common = append(common, d.ID)
				}
			}
			// common is in b's order; it must be ascending in a's order.
			for i := 1; i < len(common); i++ {
				if posA[common[i-1]] > posA[common[i]] {
					t.Fatalf("nodes %d and %d disagree on order of %s vs %s",
						a, b, common[i-1], common[i])
				}
			}
		}
	}
}

func TestMultiGroupPairwiseOrder(t *testing.T) {
	link := transport.LinkConfig{BaseDelay: 2 * time.Millisecond, Jitter: 2 * time.Millisecond}
	w := newWorld(t, 42, 6, link, Config{Groups: overlappingGroups()})

	// Every node fires casts at overlapping group sets on a staggered
	// schedule so proposals genuinely interleave.
	sets := [][]string{{"A"}, {"B"}, {"C"}, {"A", "B"}, {"B", "C"}, {"C", "A"}, {"A", "B", "C"}}
	rng := rand.New(rand.NewSource(7))
	want := make(map[MsgID][]vclock.ProcessID) // id -> dest ranks
	const perSender = 8
	for s := 0; s < 6; s++ {
		s := s
		for i := 0; i < perSender; i++ {
			gs := sets[rng.Intn(len(sets))]
			at := time.Duration(i)*3*time.Millisecond + time.Duration(s)*100*time.Microsecond
			w.k.At(at, func() {
				id := w.nodes[s].Multicast(gs, i, 16)
				want[id] = w.nodes[s].DestRanks(gs)
			})
		}
	}
	w.k.RunUntil(5 * time.Second)

	// Every destination member delivered every message, exactly once.
	got := make(map[MsgID]map[vclock.ProcessID]int)
	for rank, log := range w.delivered {
		for _, d := range log {
			if got[d.ID] == nil {
				got[d.ID] = make(map[vclock.ProcessID]int)
			}
			got[d.ID][vclock.ProcessID(rank)]++
		}
	}
	for id, dests := range want {
		for _, r := range dests {
			if got[id][vclock.ProcessID(r)] != 1 {
				t.Fatalf("message %s: dest %d delivered %d times, want 1", id, r, got[id][vclock.ProcessID(r)])
			}
		}
		if len(got[id]) != len(dests) {
			t.Fatalf("message %s: delivered at %d nodes, want exactly dests %v", id, len(got[id]), dests)
		}
	}
	checkPairwiseConsistent(t, w)

	// Agreement fully retired everywhere.
	for rank, n := range w.nodes {
		if n.OutstandingCasts() != 0 || n.PendingCount() != 0 {
			t.Fatalf("node %d: %d outstanding casts, %d pending after quiesce", rank, n.OutstandingCasts(), n.PendingCount())
		}
	}
}

func TestLossToleranceAndDuplicates(t *testing.T) {
	link := transport.LinkConfig{
		BaseDelay: 1 * time.Millisecond,
		Jitter:    3 * time.Millisecond,
		LossProb:  0.2,
		DupProb:   0.1,
	}
	w := newWorld(t, 99, 6, link, Config{Groups: overlappingGroups(), RetransInterval: 20 * time.Millisecond})

	total := 0
	for s := 0; s < 6; s++ {
		s := s
		for i := 0; i < 5; i++ {
			w.k.At(time.Duration(i*4)*time.Millisecond, func() {
				w.nodes[s].Multicast([]string{"A", "B"}, i, 16)
			})
			total++
		}
	}
	w.k.RunUntil(30 * time.Second)

	dests := w.nodes[0].DestRanks([]string{"A", "B"}) // {0,1,2,3,4}
	for _, r := range dests {
		if len(w.delivered[r]) != total {
			t.Fatalf("node %d delivered %d of %d despite retransmission", r, len(w.delivered[r]), total)
		}
	}
	checkPairwiseConsistent(t, w)
	retrans := uint64(0)
	for _, n := range w.nodes {
		retrans += n.Retransmits.Value()
	}
	if retrans == 0 {
		t.Fatalf("expected retransmissions under 20%% loss, saw none")
	}
}

func TestAdmissionWindowBlock(t *testing.T) {
	link := transport.LinkConfig{BaseDelay: 5 * time.Millisecond}
	cfg := Config{
		Groups:   overlappingGroups(),
		Budget:   flowcontrol.Budget{MaxMsgs: 1},
		Overflow: flowcontrol.Block,
	}
	w := newWorld(t, 1, 6, link, cfg)

	// Fire 4 casts back-to-back: only one may be in agreement at a time.
	w.k.At(0, func() {
		for i := 0; i < 4; i++ {
			w.nodes[0].Multicast([]string{"A"}, i, 10)
		}
		if got := w.nodes[0].BlockedCount(); got != 3 {
			t.Errorf("blocked count = %d, want 3", got)
		}
		if got := w.nodes[0].OutstandingCasts(); got != 1 {
			t.Errorf("outstanding = %d, want 1", got)
		}
	})
	w.k.RunUntil(5 * time.Second)

	for _, r := range []int{0, 1, 2} {
		if len(w.delivered[r]) != 4 {
			t.Fatalf("node %d delivered %d, want all 4 parked casts to drain", r, len(w.delivered[r]))
		}
		// FIFO: payloads in send order.
		for i, d := range w.delivered[r] {
			if d.Payload.(int) != i {
				t.Fatalf("node %d delivery %d has payload %v, want %d (FIFO)", r, i, d.Payload, i)
			}
		}
	}
	if w.nodes[0].AdmissionStall.Count() == 0 {
		t.Fatalf("expected admission-stall samples for parked casts")
	}
}

func TestAdmissionWindowShed(t *testing.T) {
	link := transport.LinkConfig{BaseDelay: 5 * time.Millisecond}
	cfg := Config{
		Groups:   overlappingGroups(),
		Budget:   flowcontrol.Budget{MaxMsgs: 2},
		Overflow: flowcontrol.Shed,
	}
	w := newWorld(t, 1, 6, link, cfg)

	var ids []MsgID
	w.k.At(0, func() {
		for i := 0; i < 5; i++ {
			ids = append(ids, w.nodes[0].Multicast([]string{"A"}, i, 10))
		}
	})
	w.k.RunUntil(5 * time.Second)

	sent := 0
	for _, id := range ids {
		if id != (MsgID{}) {
			sent++
		}
	}
	if sent != 2 {
		t.Fatalf("admitted %d casts, want 2 under MaxMsgs=2", sent)
	}
	if got := w.nodes[0].ShedCount.Value(); got != 3 {
		t.Fatalf("shed %d casts, want 3", got)
	}
	if len(w.delivered[1]) != 2 {
		t.Fatalf("node 1 delivered %d, want the 2 admitted casts", len(w.delivered[1]))
	}
}

func TestUnknownGroupPanics(t *testing.T) {
	w := newWorld(t, 1, 6, transport.LinkConfig{}, Config{Groups: overlappingGroups()})
	defer func() {
		if recover() == nil {
			t.Fatalf("Multicast to unknown group did not panic")
		}
	}()
	w.k.At(0, func() { w.nodes[0].Multicast([]string{"nope"}, nil, 0) })
	w.k.Run()
}

// TestMaxMergeOrderInvariant pins down that the coordinator's final
// timestamp is independent of proposal arrival order: MaxStamp folded
// over every permutation of a concurrent proposal set yields the same
// stamp, and ties on Time resolve by proposer rank.
func TestMaxMergeOrderInvariant(t *testing.T) {
	proposals := []vclock.Stamp{
		{Time: 7, Proc: 2},
		{Time: 9, Proc: 0},
		{Time: 9, Proc: 3}, // time tie with above; higher proc wins
		{Time: 4, Proc: 5},
		{Time: 9, Proc: 1},
	}
	want := vclock.Stamp{Time: 9, Proc: 3}

	var permute func(p []vclock.Stamp, k int)
	checked := 0
	permute = func(p []vclock.Stamp, k int) {
		if k == len(p) {
			acc := p[0]
			for _, s := range p[1:] {
				acc = MaxStamp(acc, s)
			}
			if acc != want {
				t.Fatalf("fold over %v = %s, want %s", p, acc, want)
			}
			checked++
			return
		}
		for i := k; i < len(p); i++ {
			p[k], p[i] = p[i], p[k]
			permute(p, k+1)
			p[k], p[i] = p[i], p[k]
		}
	}
	permute(append([]vclock.Stamp(nil), proposals...), 0)
	if checked != 120 {
		t.Fatalf("checked %d permutations, want 5! = 120", checked)
	}
}
