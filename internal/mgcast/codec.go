package mgcast

import (
	"encoding/binary"
	"fmt"
	"time"

	"catocs/internal/vclock"
)

// Wire codec for the four mgcast message types. The in-process
// transports pass Go values directly, so the protocol never calls this
// on its hot path; the codec exists so the messages have a defined
// external representation (for a real network transport or a durable
// log) and so fuzzing can attack the parse path. Encoding is
// little-endian with length-prefixed strings; Decode rejects truncated
// input, oversized length prefixes, and trailing garbage.

// Wire type tags.
const (
	wireData    = 0x01
	wirePropose = 0x02
	wireCommit  = 0x03
	wireAck     = 0x04
)

const (
	maxGroups   = 1 << 12 // decode guard: destination-set cardinality
	maxGroupLen = 1 << 10 // decode guard: one group name's length
	maxPayload  = 1 << 26 // decode guard: payload bytes
)

// Encode serializes one of *DataMsg, *ProposeMsg, *CommitMsg, *AckMsg.
// A DataMsg payload must be nil or []byte — the codec defines the wire
// form, and on the wire a payload is bytes.
func Encode(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case *DataMsg:
		var body []byte
		switch p := m.Payload.(type) {
		case nil:
		case []byte:
			body = p
		default:
			return nil, fmt.Errorf("mgcast: cannot encode payload of type %T (want []byte or nil)", m.Payload)
		}
		if len(m.Groups) > maxGroups {
			return nil, fmt.Errorf("mgcast: %d destination groups exceeds wire limit %d", len(m.Groups), maxGroups)
		}
		buf := make([]byte, 0, 64+len(body))
		buf = append(buf, wireData)
		buf = appendID(buf, m.ID())
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.SentAt))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.PayloadSize))
		var flags byte
		if m.Retrans {
			flags = 1
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Groups)))
		for _, g := range m.Groups {
			if len(g) > maxGroupLen {
				return nil, fmt.Errorf("mgcast: group name %d bytes exceeds wire limit %d", len(g), maxGroupLen)
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g)))
			buf = append(buf, g...)
		}
		if len(body) > maxPayload {
			return nil, fmt.Errorf("mgcast: payload %d bytes exceeds wire limit %d", len(body), maxPayload)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
		buf = append(buf, body...)
		return buf, nil
	case *ProposeMsg:
		buf := make([]byte, 0, 41)
		buf = append(buf, wirePropose)
		buf = appendID(buf, m.ID)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.From))
		buf = appendStamp(buf, m.Priority)
		return buf, nil
	case *CommitMsg:
		buf := make([]byte, 0, 33)
		buf = append(buf, wireCommit)
		buf = appendID(buf, m.ID)
		buf = appendStamp(buf, m.Priority)
		return buf, nil
	case *AckMsg:
		buf := make([]byte, 0, 25)
		buf = append(buf, wireAck)
		buf = appendID(buf, m.ID)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.From))
		return buf, nil
	}
	return nil, fmt.Errorf("mgcast: cannot encode %T", msg)
}

// Decode inverts Encode, returning one of *DataMsg, *ProposeMsg,
// *CommitMsg, *AckMsg. Every length is validated before use and the
// input must be consumed exactly.
func Decode(buf []byte) (any, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("mgcast: empty message")
	}
	r := reader{buf: buf[1:]}
	var msg any
	switch buf[0] {
	case wireData:
		m := &DataMsg{}
		id := r.id()
		m.Sender, m.Seq = id.Sender, id.Seq
		m.SentAt = time.Duration(r.u64())
		m.PayloadSize = int(r.u32())
		switch flags := r.u8(); flags {
		case 0:
		case 1:
			m.Retrans = true
		default:
			return nil, fmt.Errorf("mgcast: invalid flags byte 0x%02x", flags)
		}
		ng := int(r.u16())
		if ng > maxGroups {
			return nil, fmt.Errorf("mgcast: %d destination groups exceeds wire limit %d", ng, maxGroups)
		}
		if ng > 0 {
			m.Groups = make([]string, 0, min(ng, 64))
			for i := 0; i < ng; i++ {
				gl := int(r.u16())
				if gl > maxGroupLen {
					return nil, fmt.Errorf("mgcast: group name %d bytes exceeds wire limit %d", gl, maxGroupLen)
				}
				m.Groups = append(m.Groups, string(r.bytes(gl)))
			}
		}
		pl := int(r.u32())
		if pl > maxPayload {
			return nil, fmt.Errorf("mgcast: payload %d bytes exceeds wire limit %d", pl, maxPayload)
		}
		if pl > 0 {
			m.Payload = append([]byte(nil), r.bytes(pl)...)
		}
		msg = m
	case wirePropose:
		m := &ProposeMsg{}
		m.ID = r.id()
		m.From = vclock.ProcessID(r.u64())
		m.Priority = r.stamp()
		msg = m
	case wireCommit:
		m := &CommitMsg{}
		m.ID = r.id()
		m.Priority = r.stamp()
		msg = m
	case wireAck:
		m := &AckMsg{}
		m.ID = r.id()
		m.From = vclock.ProcessID(r.u64())
		msg = m
	default:
		return nil, fmt.Errorf("mgcast: unknown wire type 0x%02x", buf[0])
	}
	if r.err {
		return nil, fmt.Errorf("mgcast: truncated %#02x message (%d bytes)", buf[0], len(buf))
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("mgcast: %d trailing bytes after %#02x message", len(r.buf), buf[0])
	}
	return msg, nil
}

func appendID(buf []byte, id MsgID) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(id.Sender))
	return binary.LittleEndian.AppendUint64(buf, id.Seq)
}

func appendStamp(buf []byte, s vclock.Stamp) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, s.Time)
	return binary.LittleEndian.AppendUint64(buf, uint64(s.Proc))
}

// reader consumes a wire buffer with sticky error state: once a read
// runs past the end, every further read yields zero and err stays set.
type reader struct {
	buf []byte
	err bool
}

func (r *reader) take(n int) []byte {
	if r.err || n < 0 || n > len(r.buf) {
		r.err = true
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) bytes(n int) []byte { return r.take(n) }

func (r *reader) id() MsgID {
	return MsgID{Sender: vclock.ProcessID(r.u64()), Seq: r.u64()}
}

func (r *reader) stamp() vclock.Stamp {
	return vclock.Stamp{Time: r.u64(), Proc: vclock.ProcessID(r.u64())}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
