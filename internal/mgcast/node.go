package mgcast

import (
	"fmt"
	"sort"
	"time"

	"catocs/internal/flowcontrol"
	"catocs/internal/metrics"
	"catocs/internal/obs"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// Config parameterizes one mgcast universe: a set of nodes and the
// (static) group table they share.
type Config struct {
	// Groups maps a group name to its member node ranks (indices into
	// the universe's node list). Every node carries the same table; a
	// message names groups and receivers resolve the members.
	Groups map[string][]int
	// RetransInterval is the coordinator's retry period for missing
	// proposals and unacknowledged commits. Zero defaults to 50ms.
	RetransInterval time.Duration
	// Tracer, when non-nil, records the per-message lifecycle (send,
	// holdback, deliver) into the shared causal trace.
	Tracer *obs.Tracer
	// Budget bounds this sender's casts that are still in timestamp
	// agreement (sent but not yet committed and acknowledged by every
	// destination). The zero value is unlimited.
	Budget flowcontrol.Budget
	// Overflow selects the reaction when the budget is reached: Block
	// parks new casts FIFO until agreement completes for older ones,
	// Shed rejects them counted and traced. None and Spill admit
	// everything (mgcast has no unstable buffer to spill — coordinator
	// state is already bounded by the window); Suspect degrades to
	// Block (mgcast runs below the membership layer that excises).
	Overflow flowcontrol.Policy
}

func (c Config) retransInterval() time.Duration {
	if c.RetransInterval > 0 {
		return c.RetransInterval
	}
	return 50 * time.Millisecond
}

// Delivered describes one message handed to the application.
type Delivered struct {
	ID      MsgID
	Groups  []string
	Payload any
	SentAt  time.Duration
	At      time.Duration
	Latency time.Duration
	// Final is the agreed global timestamp; deliveries at every
	// destination member occur in Final order.
	Final vclock.Stamp
}

// DeliverFunc receives ordered deliveries.
type DeliverFunc func(Delivered)

// entry is one message in the holdback queue, keyed by its current
// timestamp: the local proposal until the commit arrives, the final
// agreed stamp afterwards.
type entry struct {
	msg       *DataMsg
	ts        vclock.Stamp
	committed bool
	heldAt    time.Duration
}

// castState is the coordinator's record of one outstanding cast.
type castState struct {
	msg       *DataMsg
	dests     []vclock.ProcessID
	proposals map[vclock.ProcessID]vclock.Stamp
	max       vclock.Stamp
	committed bool
	acked     map[vclock.ProcessID]bool
}

// blockedCast is an application cast parked at the admission window.
type blockedCast struct {
	groups  []string
	payload any
	size    int
	at      time.Duration
}

// Node is one endpoint of an mgcast universe. All methods must be
// called from the network's dispatch context (the simulation kernel or
// a single driving goroutine); the node performs no locking itself.
type Node struct {
	cfg     Config
	net     transport.Network
	nodes   []transport.NodeID // rank -> transport address
	rank    vclock.ProcessID
	deliver DeliverFunc
	closed  bool

	lamport vclock.Lamport
	sendSeq uint64

	// pending is the holdback queue: every message addressed to this
	// node that is not yet delivered, across all groups. Delivery takes
	// the minimum-timestamp committed entry; timestamps are globally
	// unique, so the scan is deterministic.
	pending map[MsgID]*entry
	// finals remembers delivered messages' final stamps so duplicate
	// data or commit copies can be re-acknowledged idempotently.
	finals map[MsgID]vclock.Stamp

	// Coordinator state for casts this node originated.
	coord        map[MsgID]*castState
	coordBytes   int
	retransArmed bool

	// Admission window (see Config.Budget).
	window  flowcontrol.Budget
	blocked []blockedCast

	// Instrumentation.
	Latency        metrics.Histogram // delivery latency (seconds)
	HoldbackGauge  metrics.Gauge     // holdback-queue occupancy over time
	DeliveredCount metrics.Counter
	SentCount      metrics.Counter
	CtrlMsgs       metrics.Counter   // protocol (non-data) messages sent
	Duplicates     metrics.Counter   // duplicate copies discarded
	Retransmits    metrics.Counter   // coordinator retransmissions sent
	ShedCount      metrics.Counter   // casts rejected by the Shed policy
	AdmissionStall metrics.Histogram // Block admission stall (seconds)
	trace          *obs.Tracer
}

// NewNode creates one endpoint and registers its handler on the
// network. nodes lists the universe's transport addresses by rank;
// rank is this node's index into it.
func NewNode(net transport.Network, nodes []transport.NodeID, rank vclock.ProcessID, cfg Config, deliver DeliverFunc) *Node {
	if int(rank) < 0 || int(rank) >= len(nodes) {
		panic(fmt.Sprintf("mgcast: rank %d out of range for %d nodes", rank, len(nodes)))
	}
	for name, members := range cfg.Groups {
		for _, r := range members {
			if r < 0 || r >= len(nodes) {
				panic(fmt.Sprintf("mgcast: group %q member rank %d out of range for %d nodes", name, r, len(nodes)))
			}
		}
	}
	if deliver == nil {
		deliver = func(Delivered) {}
	}
	n := &Node{
		cfg:     cfg,
		net:     net,
		nodes:   append([]transport.NodeID(nil), nodes...),
		rank:    rank,
		deliver: deliver,
		pending: make(map[MsgID]*entry),
		finals:  make(map[MsgID]vclock.Stamp),
		coord:   make(map[MsgID]*castState),
		window:  cfg.Budget,
	}
	n.trace = cfg.Tracer
	net.Register(nodes[rank], n.Handle)
	return n
}

// NewUniverse builds a node per transport address with a shared config.
// deliverFor supplies each rank's delivery callback (may return nil for
// a sink).
func NewUniverse(net transport.Network, nodes []transport.NodeID, cfg Config, deliverFor func(rank vclock.ProcessID) DeliverFunc) []*Node {
	out := make([]*Node, len(nodes))
	for i := range nodes {
		var d DeliverFunc
		if deliverFor != nil {
			d = deliverFor(vclock.ProcessID(i))
		}
		out[i] = NewNode(net, nodes, vclock.ProcessID(i), cfg, d)
	}
	return out
}

// Rank returns this node's universe-wide rank.
func (n *Node) Rank() vclock.ProcessID { return n.rank }

// PendingCount returns the holdback-queue occupancy.
func (n *Node) PendingCount() int { return len(n.pending) }

// OutstandingCasts returns the number of casts this node originated
// that are still in timestamp agreement.
func (n *Node) OutstandingCasts() int { return len(n.coord) }

// BlockedCount returns the number of casts parked at the admission
// window.
func (n *Node) BlockedCount() int { return len(n.blocked) }

// Close permanently silences the node: no further sends, deliveries,
// or timer re-arms.
func (n *Node) Close() { n.closed = true }

// DestRanks resolves a destination-group list against this node's
// group table (see ResolveDests).
func (n *Node) DestRanks(groups []string) []vclock.ProcessID {
	return ResolveDests(n.cfg.Groups, groups)
}

// Multicast sends payload (with an approximate encoded size in bytes)
// to every member of the named destination groups and coordinates its
// timestamp agreement. It returns the message id; under a limited
// Budget the cast may instead be parked (Block) or rejected (Shed) by
// the admission window, both returning the zero id. Parked casts are
// re-issued FIFO as older casts complete agreement, so per-sender send
// order is preserved.
func (n *Node) Multicast(groups []string, payload any, size int) MsgID {
	if n.closed {
		return MsgID{}
	}
	if len(groups) == 0 {
		panic("mgcast: Multicast needs at least one destination group")
	}
	if !n.admitCast(groups, payload, size) {
		return MsgID{}
	}
	return n.multicastNow(groups, payload, size)
}

// admitCast applies the overflow policy to a new application cast.
// True means send now; false means parked or shed.
func (n *Node) admitCast(groups []string, payload any, size int) bool {
	if !n.window.Limited() || n.cfg.Overflow == flowcontrol.None || n.cfg.Overflow == flowcontrol.Spill {
		return true
	}
	// FIFO within a sender: nothing may overtake an already-parked cast.
	if len(n.blocked) == 0 && n.window.Admits(len(n.coord), n.coordBytes, size) {
		return true
	}
	if n.cfg.Overflow == flowcontrol.Shed {
		n.ShedCount.Inc()
		if n.trace != nil {
			n.trace.Mark(n.net.Now(), int(n.node()), fmt.Sprintf("shed mgcast size=%dB window=%s", size, n.window))
		}
		return false
	}
	n.blocked = append(n.blocked, blockedCast{groups: groups, payload: payload, size: size, at: n.net.Now()})
	return false
}

// drainBlocked re-admits parked casts in FIFO order as far as the
// window allows. Called when agreement completes for an outstanding
// cast (the only event that frees window budget).
func (n *Node) drainBlocked() {
	if n.closed {
		return
	}
	now := n.net.Now()
	for len(n.blocked) > 0 {
		b := n.blocked[0]
		if !n.window.Admits(len(n.coord), n.coordBytes, b.size) {
			return
		}
		n.blocked = n.blocked[1:]
		n.AdmissionStall.Observe((now - b.at).Seconds())
		n.multicastNow(b.groups, b.payload, b.size)
	}
}

// multicastNow stamps and transmits a cast the admission window has
// cleared.
func (n *Node) multicastNow(groups []string, payload any, size int) MsgID {
	sorted := append([]string(nil), groups...)
	sort.Strings(sorted)
	dests := n.DestRanks(sorted)
	n.sendSeq++
	msg := &DataMsg{
		Sender:      n.rank,
		Seq:         n.sendSeq,
		Groups:      sorted,
		SentAt:      n.net.Now(),
		Payload:     payload,
		PayloadSize: size,
	}
	cs := &castState{
		msg:       msg,
		dests:     dests,
		proposals: make(map[vclock.ProcessID]vclock.Stamp, len(dests)),
		acked:     make(map[vclock.ProcessID]bool, len(dests)),
	}
	n.coord[msg.ID()] = cs
	n.coordBytes += size
	n.SentCount.Inc()
	if ref := msg.TraceRef(); n.trace.Wants(ref) {
		n.trace.Send(n.net.Now(), int(n.node()), ref, fmt.Sprintf("groups=%v", sorted))
	}
	for _, d := range dests {
		n.net.Send(n.node(), n.nodes[d], msg)
	}
	n.armRetrans()
	return msg.ID()
}

func (n *Node) node() transport.NodeID { return n.nodes[n.rank] }

// Handle is the node's network receive entry point.
func (n *Node) Handle(from transport.NodeID, payload any) {
	if n.closed {
		return
	}
	switch msg := payload.(type) {
	case *DataMsg:
		n.onData(msg)
	case *ProposeMsg:
		n.onPropose(msg)
	case *CommitMsg:
		n.onCommit(msg)
	case *AckMsg:
		n.onAck(msg)
	}
}

// onData stamps an arriving message with a local timestamp proposal
// and returns it to the coordinator. Duplicate copies re-send whatever
// reply the protocol state calls for, making loss recovery idempotent.
func (n *Node) onData(msg *DataMsg) {
	id := msg.ID()
	if final, done := n.finals[id]; done {
		// Already delivered: the coordinator can only be chasing the
		// commit acknowledgement.
		n.Duplicates.Inc()
		_ = final
		n.sendCtrl(msg.Sender, &AckMsg{ID: id, From: n.rank})
		return
	}
	if e, held := n.pending[id]; held {
		n.Duplicates.Inc()
		if e.committed {
			n.sendCtrl(msg.Sender, &AckMsg{ID: id, From: n.rank})
		} else {
			n.sendCtrl(msg.Sender, &ProposeMsg{ID: id, From: n.rank, Priority: e.ts})
		}
		return
	}
	prio := vclock.Stamp{Time: n.lamport.Tick(), Proc: n.rank}
	n.pending[id] = &entry{msg: msg, ts: prio, heldAt: n.net.Now()}
	n.HoldbackGauge.Set(int64(len(n.pending)))
	if n.trace != nil {
		n.trace.Holdback(n.net.Now(), int(n.node()), msg.TraceRef(), "awaiting timestamp agreement")
	}
	n.sendCtrl(msg.Sender, &ProposeMsg{ID: id, From: n.rank, Priority: prio})
}

// onPropose (at the coordinator) accumulates proposals; when every
// destination has answered, the maximum becomes the final timestamp.
func (n *Node) onPropose(p *ProposeMsg) {
	cs, ok := n.coord[p.ID]
	if !ok {
		// Cast already retired: the proposer must have missed the
		// commit; it will be answered by the retransmission path of a
		// live cast or is a stray duplicate. Re-commit from the final
		// record if we still have it.
		if final, done := n.finalFor(p.ID); done {
			n.sendCtrl(p.From, &CommitMsg{ID: p.ID, Priority: final})
		}
		return
	}
	if cs.committed {
		// Late proposal after commit (its first copy was lost, then the
		// retransmitted data produced this one): answer with the commit.
		n.sendCtrl(p.From, &CommitMsg{ID: p.ID, Priority: cs.max})
		return
	}
	if _, dup := cs.proposals[p.From]; dup {
		return
	}
	cs.proposals[p.From] = p.Priority
	cs.max = MaxStamp(cs.max, p.Priority)
	if len(cs.proposals) == len(cs.dests) {
		cs.committed = true
		n.lamport.Observe(cs.max.Time)
		for _, d := range cs.dests {
			n.sendCtrl(d, &CommitMsg{ID: p.ID, Priority: cs.max})
		}
	}
}

// finalFor looks up the final stamp of a cast this node coordinated
// and has already retired (it is also a destination in the common
// case, so finals usually has it).
func (n *Node) finalFor(id MsgID) (vclock.Stamp, bool) {
	final, ok := n.finals[id]
	return final, ok
}

// onCommit finalizes a message's timestamp and delivers every entry
// that has become safe.
func (n *Node) onCommit(c *CommitMsg) {
	n.lamport.Observe(c.Priority.Time)
	n.sendCtrl(c.ID.Sender, &AckMsg{ID: c.ID, From: n.rank})
	e, held := n.pending[c.ID]
	if !held {
		if _, done := n.finals[c.ID]; done {
			n.Duplicates.Inc()
		}
		// A commit for a message whose data we never saw cannot happen
		// on the happy path (the coordinator commits only after our
		// proposal), so anything else is a duplicate or stray; the ack
		// above is all it needs.
		return
	}
	if e.committed {
		n.Duplicates.Inc()
		return
	}
	e.ts = c.Priority
	e.committed = true
	n.drain()
}

// drain delivers committed entries while the minimum-timestamp pending
// entry is committed. An uncommitted minimum blocks delivery: its
// final timestamp is still unknown and can only be >= its proposal, so
// nothing above it is safe either.
func (n *Node) drain() {
	for {
		var min *entry
		for _, e := range n.pending {
			if min == nil || e.ts.Less(min.ts) {
				min = e
			}
		}
		if min == nil || !min.committed {
			return
		}
		id := min.msg.ID()
		delete(n.pending, id)
		n.HoldbackGauge.Set(int64(len(n.pending)))
		n.finals[id] = min.ts
		n.doDeliver(min)
	}
}

// doDeliver hands one message to the application.
func (n *Node) doDeliver(e *entry) {
	now := n.net.Now()
	lat := now - e.msg.SentAt
	n.Latency.Observe(lat.Seconds())
	n.DeliveredCount.Inc()
	if ref := e.msg.TraceRef(); n.trace.Wants(ref) {
		n.trace.Deliver(now, int(n.node()), ref, "final="+e.ts.String())
	}
	n.deliver(Delivered{
		ID:      e.msg.ID(),
		Groups:  e.msg.Groups,
		Payload: e.msg.Payload,
		SentAt:  e.msg.SentAt,
		At:      now,
		Latency: lat,
		Final:   e.ts,
	})
}

// onAck (at the coordinator) retires a cast once every destination has
// acknowledged the commit; the freed admission window re-admits parked
// casts.
func (n *Node) onAck(a *AckMsg) {
	cs, ok := n.coord[a.ID]
	if !ok || !cs.committed {
		// Unknown cast or an ack racing ahead of the commit decision
		// (impossible on the happy path; harmless to ignore — the
		// retransmission cycle re-collects it).
		return
	}
	if cs.acked[a.From] {
		return
	}
	cs.acked[a.From] = true
	if len(cs.acked) == len(cs.dests) {
		delete(n.coord, a.ID)
		n.coordBytes -= cs.msg.PayloadSize
		n.drainBlocked()
	}
}

// sendCtrl transmits one protocol control message.
func (n *Node) sendCtrl(to vclock.ProcessID, msg any) {
	if n.closed {
		return
	}
	n.CtrlMsgs.Inc()
	n.net.Send(n.node(), n.nodes[to], msg)
}

// armRetrans schedules the coordinator's retry cycle. The cycle stays
// armed while any cast is outstanding and re-arms itself; it stops
// when the node closes or retires its last cast.
func (n *Node) armRetrans() {
	if n.retransArmed || n.closed {
		return
	}
	n.retransArmed = true
	n.net.After(n.cfg.retransInterval(), func() {
		n.retransArmed = false
		if n.closed || len(n.coord) == 0 {
			return
		}
		n.retransmit()
		n.armRetrans()
	})
}

// retransmit re-sends whatever each outstanding cast is waiting on:
// the data to destinations whose proposals are missing, or the commit
// to destinations that have not acknowledged it. Iteration is in MsgID
// order so simulated runs stay deterministic.
func (n *Node) retransmit() {
	ids := make([]MsgID, 0, len(n.coord))
	for id := range n.coord {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		cs := n.coord[id]
		if !cs.committed {
			retrans := *cs.msg
			retrans.Retrans = true
			for _, d := range cs.dests {
				if _, have := cs.proposals[d]; have {
					continue
				}
				n.Retransmits.Inc()
				n.net.Send(n.node(), n.nodes[d], &retrans)
			}
			continue
		}
		for _, d := range cs.dests {
			if cs.acked[d] {
				continue
			}
			n.Retransmits.Inc()
			n.sendCtrl(d, &CommitMsg{ID: id, Priority: cs.max})
		}
	}
}
