// Package mgcast implements Skeen-style genuine multi-group atomic
// multicast: a message addressed to several overlapping process groups
// is delivered by every destination member in a single global
// timestamp order, without funnelling all traffic through one big
// group or one sequencer.
//
// The protocol is the classic two-phase timestamp agreement (Skeen
// 1985, as specified by the TLA+ models this reproduction follows):
//
//  1. The sender multicasts the message to the union of its
//     destination groups' members and acts as the message's
//     coordinator.
//  2. Every destination member stamps the message with a proposed
//     timestamp drawn from its local Lamport clock, buffers it in a
//     holdback queue ordered by timestamp, and returns the proposal.
//  3. The coordinator commits the maximum proposal as the final
//     timestamp and announces it to the destinations.
//  4. A member delivers a committed message once its final timestamp
//     is the minimum over every message still pending locally — an
//     uncommitted message's final timestamp can only grow past its
//     proposal, so the minimum committed entry is safe.
//
// Because final timestamps are globally unique (a (time, proposer)
// pair is issued at most once) and every member delivers in final-
// timestamp order, any two members deliver their common messages in
// the same relative order even when the messages were addressed to
// different, merely overlapping group sets — the pairwise-consistent,
// acyclic cross-group order that the paper's §5 "one big group"
// fallback buys only by making every process receive everything.
//
// Unlike the single-group agreement mode in internal/multicast (which
// assumes lossless links), this implementation is loss-tolerant: the
// coordinator retransmits the message to destinations whose proposals
// are missing and the commit to destinations that have not
// acknowledged it, so the protocol terminates under the chaos
// harness's drop/duplicate/partition faults.
package mgcast

import (
	"fmt"
	"time"

	"catocs/internal/obs"
	"catocs/internal/vclock"
)

// MsgID names a multicast uniquely: the seq'th message originated by a
// sender node. Ranks are universe-wide node indices, not per-group
// ranks, so an ID is meaningful to every group it touches.
type MsgID struct {
	Sender vclock.ProcessID
	Seq    uint64
}

// String renders the id as "sender:seq".
func (id MsgID) String() string { return fmt.Sprintf("%d:%d", id.Sender, id.Seq) }

// Less orders ids lexicographically; the coordinator's retransmission
// scan iterates in this order so simulated runs stay deterministic.
func (id MsgID) Less(other MsgID) bool {
	if id.Sender != other.Sender {
		return id.Sender < other.Sender
	}
	return id.Seq < other.Seq
}

// DataMsg is an application multicast on the wire, addressed to a set
// of destination groups.
type DataMsg struct {
	Sender vclock.ProcessID
	Seq    uint64 // per-sender sequence, 1-based
	// Groups names the destination groups, sorted. Every receiver
	// resolves the same group table, so the member set is implied.
	Groups      []string
	SentAt      time.Duration
	Payload     any
	PayloadSize int
	// Retrans marks a coordinator retransmission (send-side stats only;
	// receivers treat both copies identically).
	Retrans bool
}

// ID returns the message's identity.
func (m *DataMsg) ID() MsgID { return MsgID{Sender: m.Sender, Seq: m.Seq} }

// TraceRef implements obs.Referable so the transport layer records
// wire-receive events for the causal trace recorder.
func (m *DataMsg) TraceRef() obs.MsgRef {
	return obs.MsgRef{Sender: int64(m.Sender), Seq: m.Seq}
}

// groupsBytes is the encoded cost of the destination-group list.
func (m *DataMsg) groupsBytes() int {
	n := 2
	for _, g := range m.Groups {
		n += 2 + len(g)
	}
	return n
}

// ApproxSize implements transport.Sizer: a fixed header, the group
// list, and the payload. The per-message metadata is a constant plus
// the destination list — independent of group sizes and of the number
// of processes, which is the point of genuine multicast.
func (m *DataMsg) ApproxSize() int { return 32 + m.groupsBytes() + m.PayloadSize }

// ControlSize implements transport.ControlSizer: everything but the
// payload is ordering metadata.
func (m *DataMsg) ControlSize() int { return m.ApproxSize() - m.PayloadSize }

// Forwarded implements transport.ForwardMarker: retransmissions count
// as relayed copies, not fresh origin sends.
func (m *DataMsg) Forwarded() bool { return m.Retrans }

// ProposeMsg is a destination member's timestamp proposal, returned to
// the message's coordinator (its sender).
type ProposeMsg struct {
	ID       MsgID
	From     vclock.ProcessID
	Priority vclock.Stamp
}

// ApproxSize implements transport.Sizer.
func (m *ProposeMsg) ApproxSize() int { return 48 }

// CommitMsg fixes a message's final timestamp: the maximum proposal
// over all destination members.
type CommitMsg struct {
	ID       MsgID
	Priority vclock.Stamp
}

// ApproxSize implements transport.Sizer.
func (m *CommitMsg) ApproxSize() int { return 40 }

// AckMsg acknowledges a commit back to the coordinator, letting it
// retire the cast's retransmission state and free the sender's
// admission window.
type AckMsg struct {
	ID   MsgID
	From vclock.ProcessID
}

// ApproxSize implements transport.Sizer.
func (m *AckMsg) ApproxSize() int { return 32 }

// MaxStamp returns the later of two timestamp proposals under the
// total (time, proposer) order — the commit rule's merge operator. It
// is commutative and associative, so the coordinator's final timestamp
// is independent of proposal arrival order; TestMaxMergeOrderInvariant
// pins that down.
func MaxStamp(a, b vclock.Stamp) vclock.Stamp {
	if a.Less(b) {
		return b
	}
	return a
}
