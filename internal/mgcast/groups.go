package mgcast

import (
	"fmt"
	"sort"

	"catocs/internal/vclock"
)

// ResolveDests resolves a destination-group list against a group table
// to the sorted union of member ranks. It panics on an unknown group
// name — addressing a group that does not exist is a programming
// error, matching the static-group-table model.
func ResolveDests(table map[string][]int, groups []string) []vclock.ProcessID {
	seen := make(map[int]bool)
	for _, g := range groups {
		members, ok := table[g]
		if !ok {
			panic(fmt.Sprintf("mgcast: unknown destination group %q", g))
		}
		for _, r := range members {
			seen[r] = true
		}
	}
	out := make([]vclock.ProcessID, 0, len(seen))
	for r := range seen {
		out = append(out, vclock.ProcessID(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WrapGroups builds the standard overlapping-group test topology: g
// groups over n nodes, group j holding size consecutive ranks starting
// at j*n/g, wrapping around. Neighbouring groups overlap whenever
// size exceeds the n/g stride, which is the regime the multi-group
// protocol exists for. Names are "g00", "g01", ... so lexicographic
// order matches group index.
func WrapGroups(n, g, size int) map[string][]int {
	if n <= 0 || g <= 0 {
		panic(fmt.Sprintf("mgcast: WrapGroups(%d, %d, %d) needs positive node and group counts", n, g, size))
	}
	if size < 1 {
		size = 1
	}
	if size > n {
		size = n
	}
	out := make(map[string][]int, g)
	for j := 0; j < g; j++ {
		start := j * n / g
		members := make([]int, size)
		for i := range members {
			members[i] = (start + i) % n
		}
		out[fmt.Sprintf("g%02d", j)] = members
	}
	return out
}

// GroupNames returns the WrapGroups names for g groups, in index order.
func GroupNames(g int) []string {
	out := make([]string, g)
	for j := range out {
		out[j] = fmt.Sprintf("g%02d", j)
	}
	return out
}
