package mgcast

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"catocs/internal/vclock"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	buf, err := Encode(msg)
	if err != nil {
		t.Fatalf("Encode(%#v): %v", msg, err)
	}
	out, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(Encode(%#v)): %v", msg, err)
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []any{
		&DataMsg{Sender: 3, Seq: 17, Groups: []string{"A", "B", "payroll"},
			SentAt: 1500 * time.Millisecond, Payload: []byte("hello"), PayloadSize: 5, Retrans: true},
		&DataMsg{Sender: 0, Seq: 1}, // no groups, nil payload
		&DataMsg{Sender: 12, Seq: 9, Groups: []string{""}, Payload: []byte{}, PayloadSize: 0},
		&ProposeMsg{ID: MsgID{Sender: 1, Seq: 2}, From: 4, Priority: vclock.Stamp{Time: 88, Proc: 4}},
		&CommitMsg{ID: MsgID{Sender: 5, Seq: 1 << 40}, Priority: vclock.Stamp{Time: 1, Proc: 0}},
		&AckMsg{ID: MsgID{Sender: 2, Seq: 3}, From: 7},
	}
	for _, msg := range cases {
		got := roundTrip(t, msg)
		// An encoded empty payload decodes to nil; normalize for compare.
		if dm, ok := msg.(*DataMsg); ok {
			want := *dm
			if b, ok := want.Payload.([]byte); ok && len(b) == 0 {
				want.Payload = nil
			}
			if !reflect.DeepEqual(got, &want) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, &want)
			}
			continue
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	good, err := Encode(&DataMsg{Sender: 1, Seq: 2, Groups: []string{"A"}, Payload: []byte("xy"), PayloadSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,                // empty
		{0xff},             // unknown type
		good[:len(good)-1], // truncated payload
		append(good[:0:0], append(append([]byte{}, good...), 0)...), // trailing byte
		{wirePropose, 1, 2, 3}, // truncated propose
		{wireCommit},           // bare header
	}
	for i, buf := range bad {
		if _, err := Decode(buf); err == nil {
			t.Errorf("case %d: Decode(%x) accepted malformed input", i, buf)
		}
	}
	// A group-count prefix far beyond the remaining bytes must error,
	// not allocate or loop.
	huge := append([]byte{wireData}, make([]byte, 21)...) // id+sentat+size+flags
	huge = append(huge, 0xff, 0xff)                       // 65535 groups
	if _, err := Decode(huge); err == nil {
		t.Errorf("Decode accepted absurd group count")
	}
}

func TestCodecRejectsNonByteSlicePayload(t *testing.T) {
	if _, err := Encode(&DataMsg{Sender: 1, Seq: 1, Payload: 42}); err == nil {
		t.Fatal("Encode accepted an int payload")
	}
}

// FuzzCodecRoundTrip attacks the parse path: arbitrary bytes must never
// panic, and anything that decodes must re-encode to the identical wire
// form (decode∘encode is the identity on valid messages).
func FuzzCodecRoundTrip(f *testing.F) {
	seeds := []any{
		&DataMsg{Sender: 3, Seq: 17, Groups: []string{"A", "B"}, SentAt: time.Second,
			Payload: []byte("corpus"), PayloadSize: 6},
		&ProposeMsg{ID: MsgID{Sender: 1, Seq: 2}, From: 4, Priority: vclock.Stamp{Time: 9, Proc: 4}},
		&CommitMsg{ID: MsgID{Sender: 5, Seq: 6}, Priority: vclock.Stamp{Time: 10, Proc: 2}},
		&AckMsg{ID: MsgID{Sender: 2, Seq: 3}, From: 7},
	}
	for _, msg := range seeds {
		buf, err := Encode(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		re, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%#v)", err, msg)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x\n msg %#v", data, re, msg)
		}
	})
}
