package mgcast

import (
	"fmt"

	"catocs/internal/wire"
)

// Registry bridge: mgcast already had its own self-tagging binary
// codec (codec.go) before the shared wire registry existed. These
// registrations adapt it so the TCP transport can carry mgcast
// traffic: each message type encodes through mgcast.Encode (whose
// output carries its own leading type tag) and every kind decodes
// through mgcast.Decode, which dispatches on that tag. Decode rejects
// a frame whose inner tag disagrees with the registry kind, so a
// corrupted kind field cannot smuggle one message type as another.

func init() {
	reg := func(kind wire.Kind, zero any, tag byte) {
		wire.Register(kind, zero,
			func(payload any) ([]byte, error) { return Encode(payload) },
			func(buf []byte) (any, error) {
				msg, err := Decode(buf)
				if err != nil {
					return nil, err
				}
				if len(buf) > 0 && buf[0] != tag {
					return nil, fmt.Errorf("mgcast: wire kind expects tag 0x%02x, frame carries 0x%02x", tag, buf[0])
				}
				return msg, nil
			})
	}
	reg(wire.KindMGCast+0, &DataMsg{}, wireData)
	reg(wire.KindMGCast+1, &ProposeMsg{}, wirePropose)
	reg(wire.KindMGCast+2, &CommitMsg{}, wireCommit)
	reg(wire.KindMGCast+3, &AckMsg{}, wireAck)
}
