package scalecast

import (
	"fmt"
	"testing"
	"time"

	"catocs/internal/multicast"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// testGroup wires a scalecast group over a fresh simulated network and
// records per-member delivery sequences, mirroring the multicast test
// harness so the two substrates are exercised identically.
type testGroup struct {
	k          *sim.Kernel
	net        *transport.SimNet
	nodes      []transport.NodeID
	members    []*Member
	deliveries [][]any
	ids        [][]multicast.MsgID
}

func newTestGroup(t *testing.T, n int, seed int64, link transport.LinkConfig, cfg Config) *testGroup {
	t.Helper()
	k := sim.NewKernel(seed)
	k.SetEventLimit(5_000_000)
	net := transport.NewSimNet(k, link)
	g := &testGroup{k: k, net: net, deliveries: make([][]any, n), ids: make([][]multicast.MsgID, n)}
	g.nodes = make([]transport.NodeID, n)
	for i := range g.nodes {
		g.nodes[i] = transport.NodeID(i)
	}
	g.members = NewGroup(net, g.nodes, cfg, func(rank vclock.ProcessID) multicast.DeliverFunc {
		return func(d multicast.Delivered) {
			g.deliveries[rank] = append(g.deliveries[rank], d.Payload)
			g.ids[rank] = append(g.ids[rank], d.ID)
		}
	})
	return g
}

func (g *testGroup) assertAllDelivered(t *testing.T, want int) {
	t.Helper()
	for r, d := range g.deliveries {
		if len(d) != want {
			t.Fatalf("member %d delivered %d messages, want %d", r, len(d), want)
		}
	}
}

// assertPerOriginFIFO checks each member saw every origin's seqs in
// strictly increasing order (which also rules out duplicates). Gaps
// are legal at the application layer: protocol-internal barrier
// broadcasts share the per-origin sequence space but are never
// surfaced; completeness is asserted separately via exact counts.
func (g *testGroup) assertPerOriginFIFO(t *testing.T) {
	t.Helper()
	for r := range g.ids {
		last := map[vclock.ProcessID]uint64{}
		for _, id := range g.ids[r] {
			if id.Seq <= last[id.Sender] {
				t.Fatalf("member %d: origin %d delivered seq %d after %d", r, id.Sender, id.Seq, last[id.Sender])
			}
			last[id.Sender] = id.Seq
		}
	}
}

func TestOverlayShape(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 64, 257} {
		view := make([]transport.NodeID, n)
		for i := range view {
			view[i] = transport.NodeID(i * 3) // non-contiguous IDs
		}
		adj := make(map[transport.NodeID]map[transport.NodeID]bool)
		maxDeg := 0
		for _, self := range view {
			peers := overlayNeighbors(view, self, 4)
			adj[self] = map[transport.NodeID]bool{}
			for _, p := range peers {
				if p == self {
					t.Fatalf("n=%d: self loop at %d", n, self)
				}
				adj[self][p] = true
			}
			if len(peers) > maxDeg {
				maxDeg = len(peers)
			}
		}
		// Symmetry: circulant offsets wire both directions.
		for a, peers := range adj {
			for b := range peers {
				if !adj[b][a] {
					t.Fatalf("n=%d: asymmetric link %d->%d", n, a, b)
				}
			}
		}
		// Bounded degree: at most 2 offsets * 2 directions.
		if maxDeg > 4 {
			t.Fatalf("n=%d: degree %d exceeds target 4", n, maxDeg)
		}
		// Connectivity via BFS from view[0].
		seen := map[transport.NodeID]bool{view[0]: true}
		frontier := []transport.NodeID{view[0]}
		for len(frontier) > 0 {
			var next []transport.NodeID
			for _, v := range frontier {
				for p := range adj[v] {
					if !seen[p] {
						seen[p] = true
						next = append(next, p)
					}
				}
			}
			frontier = next
		}
		if len(seen) != n {
			t.Fatalf("n=%d: overlay disconnected, reached %d of %d", n, len(seen), n)
		}
	}
}

func TestBasicDelivery(t *testing.T) {
	g := newTestGroup(t, 8, 1, transport.LinkConfig{BaseDelay: time.Millisecond}, Config{Group: "g"})
	g.members[0].Multicast("a", 8)
	g.members[5].Multicast("b", 8)
	g.k.Run()
	g.assertAllDelivered(t, 2)
	g.assertPerOriginFIFO(t)
}

func TestCausalRespectsHappensBefore(t *testing.T) {
	// The paper's Figure-1 schedule: Q multicasts m1; P, on delivering
	// m1, multicasts m2. Even with the network heavily favouring P→R,
	// R must deliver m1 first — here the guarantee comes from the
	// forward-before-deliver flood, not from vector clocks.
	k := sim.NewKernel(7)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 2 * time.Millisecond})
	nodes := []transport.NodeID{0, 1, 2} // P, Q, R
	net.SetLink(1, 2, transport.LinkConfig{BaseDelay: 40 * time.Millisecond})
	var orders [3][]any
	members := NewGroup(net, nodes, Config{Group: "g"}, func(rank vclock.ProcessID) multicast.DeliverFunc {
		return func(d multicast.Delivered) { orders[rank] = append(orders[rank], d.Payload) }
	})
	// P reacts to m1 by multicasting m2.
	reacted := false
	p := members[0]
	base := p.deliver
	p.deliver = func(d multicast.Delivered) {
		base(d)
		if d.Payload == "m1" && !reacted {
			reacted = true
			p.Multicast("m2", 8)
		}
	}
	members[1].Multicast("m1", 8)
	k.Run()
	for r, o := range orders {
		if len(o) != 2 || o[0] != "m1" || o[1] != "m2" {
			t.Fatalf("member %d delivered %v, want [m1 m2]", r, o)
		}
	}
}

func TestLossRecovery(t *testing.T) {
	// 20% loss with jitter: per-link nack/retransmission must still get
	// every message everywhere, exactly once, in per-origin order.
	g := newTestGroup(t, 9, 11,
		transport.LinkConfig{BaseDelay: time.Millisecond, Jitter: 3 * time.Millisecond, LossProb: 0.2},
		Config{Group: "g"})
	const per = 10
	for s := 0; s < 3; s++ {
		for i := 0; i < per; i++ {
			sender := g.members[s*3]
			g.k.At(time.Duration(i)*2*time.Millisecond, func() {
				sender.Multicast(fmt.Sprintf("o%d-%d", sender.Node(), i), 16)
			})
		}
	}
	g.k.Run()
	g.assertAllDelivered(t, 3*per)
	g.assertPerOriginFIFO(t)
	// The hybrid buffer must drain once everything is acked.
	for r, m := range g.members {
		if n := m.RetransBufferCount(); n != 0 {
			t.Fatalf("member %d retains %d unacked packets after quiescence", r, n)
		}
		if n := m.PendingCount(); n != 0 {
			t.Fatalf("member %d retains %d pending messages after quiescence", r, n)
		}
	}
}

func TestPartitionHeal(t *testing.T) {
	g := newTestGroup(t, 8, 3, transport.LinkConfig{BaseDelay: time.Millisecond}, Config{Group: "g"})
	g.k.At(0, func() {
		g.net.Partition([]transport.NodeID{0, 1, 2, 3}, []transport.NodeID{4, 5, 6, 7})
	})
	g.k.At(time.Millisecond, func() {
		g.members[0].Multicast("left", 8)
		g.members[4].Multicast("right", 8)
	})
	g.k.At(200*time.Millisecond, func() { g.net.Heal() })
	g.k.Run()
	g.assertAllDelivered(t, 2)
	g.assertPerOriginFIFO(t)
}

func TestConstantControlMetadata(t *testing.T) {
	// The headline property: per-message wire control bytes do not grow
	// with the group. Compare a scalecast data packet against CBCAST's
	// DataMsg at N=8 and N=512.
	for _, n := range []int{8, 512} {
		fm := &FloodMsg{Group: "g", Origin: 3, Seq: 9, PayloadSize: 100}
		pkt := &LinkPacket{Group: "g", Session: 1, Seq: 4, Msg: fm}
		if got := transport.ControlSize(pkt); got != 52 {
			t.Fatalf("n=%d: scalecast packet control bytes = %d, want 52", n, got)
		}
		vc := make(vclock.VC, n)
		dm := &multicast.DataMsg{Group: "g", VC: vc, PayloadSize: 100}
		if got := transport.ControlSize(dm); got < 8*n {
			t.Fatalf("n=%d: CBCAST control bytes = %d, expected >= %d (vector clock)", n, got, 8*n)
		}
	}
}

// runJoin drives a 6-member group, has node 6 join mid-stream, and
// returns the joiner's delivery log plus the group harness.
func TestJoinMidStream(t *testing.T) {
	g := newTestGroup(t, 6, 17, transport.LinkConfig{BaseDelay: time.Millisecond, Jitter: 2 * time.Millisecond}, Config{Group: "g"})
	// Pre-join traffic.
	for i := 0; i < 5; i++ {
		sender := g.members[i%3]
		g.k.At(time.Duration(i)*2*time.Millisecond, func() { sender.Multicast(fmt.Sprintf("pre-%d", i), 8) })
	}

	var joiner *Member
	var joinerLog []any
	var joinerIDs []multicast.MsgID
	newView := append(append([]transport.NodeID(nil), g.nodes...), 6)
	g.k.At(20*time.Millisecond, func() {
		joiner = JoinMember(g.net, newView, 6, Config{Group: "g"}, func(d multicast.Delivered) {
			joinerLog = append(joinerLog, d.Payload)
			joinerIDs = append(joinerIDs, d.ID)
		})
		for _, m := range g.members {
			m.Rewire(newView)
		}
	})
	// Post-join traffic, including from the joiner itself.
	g.k.At(120*time.Millisecond, func() {
		g.members[4].Multicast("post-a", 8)
		joiner.Multicast("post-j", 8)
	})
	g.k.At(140*time.Millisecond, func() { g.members[1].Multicast("post-b", 8) })
	g.k.Run()

	// Veterans see everything: 5 pre + 3 post.
	g.assertAllDelivered(t, 8)
	g.assertPerOriginFIFO(t)
	// The joiner sees all post-join traffic (it may also catch late
	// pre-join floods, but never out of per-origin order).
	want := map[any]bool{"post-a": true, "post-j": true, "post-b": true}
	for _, p := range joinerLog {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("joiner missed post-join messages %v; log=%v", want, joinerLog)
	}
	last := map[vclock.ProcessID]uint64{}
	for _, id := range joinerIDs {
		if id.Seq <= last[id.Sender] {
			t.Fatalf("joiner: origin %d delivered seq %d after %d", id.Sender, id.Seq, last[id.Sender])
		}
		last[id.Sender] = id.Seq
	}
	if joiner.PendingCount() != 0 {
		t.Fatalf("joiner retains %d pending messages", joiner.PendingCount())
	}
}

func TestLeaveMidStream(t *testing.T) {
	g := newTestGroup(t, 8, 23, transport.LinkConfig{BaseDelay: time.Millisecond}, Config{Group: "g"})
	g.k.At(0, func() { g.members[2].Multicast("before", 8) })
	newView := []transport.NodeID{0, 1, 3, 4, 5, 6, 7} // node 2 departs
	g.k.At(50*time.Millisecond, func() {
		for _, m := range g.members {
			m.Rewire(newView)
		}
	})
	g.k.At(100*time.Millisecond, func() {
		g.members[0].Multicast("after", 8)
		// The departed member is closed; its multicast is a no-op.
		if id := g.members[2].Multicast("ghost", 8); id != (multicast.MsgID{}) {
			t.Fatalf("departed member still multicasting: %v", id)
		}
	})
	g.k.Run()
	for r, d := range g.deliveries {
		if r == 2 {
			continue
		}
		if len(d) != 2 || d[0] != "before" || d[1] != "after" {
			t.Fatalf("member %d delivered %v, want [before after]", r, d)
		}
	}
}

func TestForwardingCensus(t *testing.T) {
	// In a group big enough to not be a clique, delivery requires
	// relaying: the transport must attribute forwarded copies.
	g := newTestGroup(t, 16, 29, transport.LinkConfig{BaseDelay: time.Millisecond}, Config{Group: "g"})
	g.members[0].Multicast("x", 8)
	g.k.Run()
	g.assertAllDelivered(t, 1)
	if g.net.Stats().Forwarded == 0 {
		t.Fatal("no forwarded packets recorded for a 16-node flood")
	}
	if ns := g.net.NodeStats(0); ns.Forwarded != 0 {
		t.Fatalf("origin's own sends misattributed as forwards: %+v", ns)
	}
	total := uint64(0)
	for _, m := range g.members {
		total += m.ForwardedMsgs.Value()
	}
	if total != g.net.Stats().Forwarded {
		t.Fatalf("member census %d != transport census %d", total, g.net.Stats().Forwarded)
	}
}
