package scalecast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"catocs/internal/multicast"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// stamped is a fuzz payload carrying a ground-truth vector clock.
// Scalecast puts no clocks on the wire — that is its whole point — so
// the test computes happens-before itself: each member ticks its own
// component at send time and merges delivered stamps, exactly the
// bookkeeping CBCAST does in-protocol. Any delivery of a message
// before one of its causal predecessors then shows up as a stamp
// inversion.
type stamped struct {
	name string
	vc   vclock.VC
}

// TestFuzzFloodCausalInvariants ports the multicast fuzz harness to
// scalecast: randomized group size, traffic, loss, jitter, and
// partition schedules, asserting the invariants causal broadcast must
// keep —
//
//  1. no duplicates: each member delivers each message at most once;
//  2. per-origin FIFO (strictly increasing app-level seqs);
//  3. causal safety: no member delivers m before a message that
//     happens-before m;
//  4. completeness: after the partition heals, every member delivers
//     every message.
func TestFuzzFloodCausalInvariants(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := sim.NewKernel(seed).Rand() // independent param draws
		n := 2 + rng.Intn(7)
		msgs := 5 + rng.Intn(20)
		loss := rng.Float64() * 0.25
		jitter := time.Duration(rng.Intn(8)) * time.Millisecond

		k := sim.NewKernel(seed * 37)
		k.SetEventLimit(20_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{
			BaseDelay: time.Millisecond, Jitter: jitter, LossProb: loss,
		})
		nodes := make([]transport.NodeID, n)
		for i := range nodes {
			nodes[i] = transport.NodeID(i)
		}
		type rec struct {
			id multicast.MsgID
			vc vclock.VC
		}
		deliveries := make([][]rec, n)
		clocks := make([]vclock.VC, n) // test-side ground truth
		for i := range clocks {
			clocks[i] = vclock.New(n)
		}
		sent := 0
		var members []*Member
		members = NewGroup(net, nodes, Config{Group: "fuzz",
			AckInterval: 8 * time.Millisecond, NackDelay: 8 * time.Millisecond,
			Heartbeat: 16 * time.Millisecond},
			func(rank vclock.ProcessID) multicast.DeliverFunc {
				return func(d multicast.Delivered) {
					s := d.Payload.(stamped)
					clocks[rank] = clocks[rank].Merge(s.vc)
					deliveries[rank] = append(deliveries[rank], rec{id: d.ID, vc: s.vc})
					// React to base messages only, building single-hop
					// causal chains across origins.
					if s.name[0] == 'm' && int(d.ID.Seq)%n == int(rank) {
						clocks[rank].Tick(rank)
						members[rank].Multicast(stamped{
							name: fmt.Sprintf("react-%d-%v", rank, d.ID),
							vc:   clocks[rank].Clone(),
						}, 8)
						sent++
					}
				}
			})
		for i := 0; i < msgs; i++ {
			i := i
			s := rng.Intn(n)
			at := time.Duration(rng.Intn(msgs*4)) * time.Millisecond
			k.At(at, func() {
				clocks[s].Tick(vclock.ProcessID(s))
				members[s].Multicast(stamped{
					name: fmt.Sprintf("m%d", i),
					vc:   clocks[s].Clone(),
				}, 8)
				sent++
			})
		}
		// A partition splits the group mid-stream and heals before the
		// deadline; flooding must recover across the healed cut.
		if n >= 3 {
			cut := 1 + rng.Intn(n-1)
			healAt := time.Duration(msgs*2+rng.Intn(msgs)) * time.Millisecond
			k.At(time.Duration(rng.Intn(msgs))*time.Millisecond, func() {
				net.Partition(nodes[:cut], nodes[cut:])
			})
			k.At(healAt, func() { net.Heal() })
		}
		k.RunUntil(time.Duration(msgs*4)*time.Millisecond + 10*time.Second)
		for _, m := range members {
			m.Close()
		}

		for r := 0; r < n; r++ {
			// (1) no duplicates.
			seen := make(map[multicast.MsgID]bool)
			for _, d := range deliveries[r] {
				if seen[d.id] {
					t.Fatalf("seed %d: member %d delivered %v twice", seed, r, d.id)
				}
				seen[d.id] = true
			}
			// (2) per-origin FIFO.
			last := make(map[vclock.ProcessID]uint64)
			for _, d := range deliveries[r] {
				if d.id.Seq <= last[d.id.Sender] {
					t.Fatalf("seed %d: member %d FIFO violation at %v", seed, r, d.id)
				}
				last[d.id.Sender] = d.id.Seq
			}
			// (3) causal safety.
			for i := 0; i < len(deliveries[r]); i++ {
				for j := i + 1; j < len(deliveries[r]); j++ {
					a, b := deliveries[r][i], deliveries[r][j]
					if b.vc.HappensBefore(a.vc) {
						t.Fatalf("seed %d: member %d delivered %v before its causal predecessor %v",
							seed, r, a.id, b.id)
					}
				}
			}
			// (4) completeness after heal.
			if len(deliveries[r]) != sent {
				t.Fatalf("seed %d (n=%d loss=%.2f): member %d delivered %d of %d",
					seed, n, loss, r, len(deliveries[r]), sent)
			}
		}
	}
}

// TestFuzzJoinLeaveInvariants drives randomized view changes: members
// join mid-stream (JoinMember + Rewire) and leave again, with traffic
// flowing throughout. Veterans must keep all four invariants; joiners
// must deliver everything sent after their wiring-in settles, in causal
// order.
func TestFuzzJoinLeaveInvariants(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := sim.NewKernel(seed).Rand()
		n := 4 + rng.Intn(4) // initial size
		maxID := n + 1
		jitter := time.Duration(rng.Intn(4)) * time.Millisecond

		k := sim.NewKernel(seed * 41)
		k.SetEventLimit(20_000_000)
		net := transport.NewSimNet(k, transport.LinkConfig{
			BaseDelay: time.Millisecond, Jitter: jitter,
		})
		nodes := make([]transport.NodeID, n)
		for i := range nodes {
			nodes[i] = transport.NodeID(i)
		}
		type rec struct {
			id   multicast.MsgID
			vc   vclock.VC
			name string
		}
		deliveries := make(map[transport.NodeID][]rec)
		clocks := make(map[transport.NodeID]vclock.VC)
		alive := make(map[transport.NodeID]*Member)
		deliverFor := func(id transport.NodeID) multicast.DeliverFunc {
			return func(d multicast.Delivered) {
				s := d.Payload.(stamped)
				clocks[id] = clocks[id].Merge(s.vc)
				deliveries[id] = append(deliveries[id], rec{id: d.ID, vc: s.vc, name: s.name})
			}
		}
		for _, id := range nodes {
			clocks[id] = vclock.New(maxID)
		}
		members := NewGroup(net, nodes, Config{Group: "fuzz"},
			func(rank vclock.ProcessID) multicast.DeliverFunc {
				return deliverFor(nodes[rank])
			})
		for i, id := range nodes {
			alive[id] = members[i]
		}
		view := append([]transport.NodeID(nil), nodes...)

		joinID := transport.NodeID(n)
		var sentAfterJoin []string // names actually multicast post-join
		send := func(id transport.NodeID, name string) func() {
			return func() {
				m := alive[id]
				if m == nil {
					return
				}
				clocks[id].Tick(vclock.ProcessID(id))
				m.Multicast(stamped{name: name, vc: clocks[id].Clone()}, 8)
				if alive[joinID] != nil {
					sentAfterJoin = append(sentAfterJoin, name)
				}
			}
		}
		for i := 0; i < 12; i++ {
			k.At(time.Duration(i*4)*time.Millisecond, send(nodes[i%n], fmt.Sprintf("pre-%d", i)))
		}
		// Join node n at a random point.
		k.At(time.Duration(10+rng.Intn(20))*time.Millisecond, func() {
			view = append(view, joinID)
			clocks[joinID] = vclock.New(maxID)
			alive[joinID] = JoinMember(net, view, joinID, Config{Group: "fuzz"}, deliverFor(joinID))
			// Rewire survivors in a seed-derived order: deterministic per
			// seed, but diverse across seeds — rewire interleavings are
			// exactly where reconfiguration bugs hide.
			for _, i := range rng.Perm(len(view)) {
				if id := view[i]; id != joinID && alive[id] != nil {
					alive[id].Rewire(view)
				}
			}
		})
		// Post-join traffic from everyone, including the joiner.
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("post-%d", i)
			src := nodes[rng.Intn(n)]
			if i%3 == 0 {
				src = joinID
			}
			k.At(time.Duration(200+i*4)*time.Millisecond, send(src, name))
		}
		// A random veteran leaves after the joiner settles.
		leaver := nodes[rng.Intn(n)]
		k.At(400*time.Millisecond, func() {
			old := append([]transport.NodeID(nil), view...)
			next := view[:0]
			for _, id := range view {
				if id != leaver {
					next = append(next, id)
				}
			}
			view = next
			for _, i := range rng.Perm(len(old)) {
				if m := alive[old[i]]; m != nil {
					m.Rewire(view)
				}
			}
			delete(alive, leaver)
		})
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("final-%d", i)
			src := view[rng.Intn(len(view))]
			k.At(time.Duration(500+i*4)*time.Millisecond, func() {
				if alive[src] != nil {
					send(src, name)()
				}
			})
		}
		k.RunUntil(5 * time.Second)

		for id, recs := range deliveries {
			seen := make(map[multicast.MsgID]bool)
			last := make(map[vclock.ProcessID]uint64)
			for _, d := range recs {
				if seen[d.id] {
					t.Fatalf("seed %d: node %d delivered %v twice", seed, id, d.id)
				}
				seen[d.id] = true
				if d.id.Seq <= last[d.id.Sender] {
					t.Fatalf("seed %d: node %d FIFO violation at %v", seed, id, d.id)
				}
				last[d.id.Sender] = d.id.Seq
			}
			for i := 0; i < len(recs); i++ {
				for j := i + 1; j < len(recs); j++ {
					if recs[j].vc.HappensBefore(recs[i].vc) {
						t.Fatalf("seed %d: node %d causal violation: delivered %v before predecessor %v",
							seed, id, recs[i].id, recs[j].id)
					}
				}
			}
		}
		// The joiner must have delivered everything multicast after its
		// join (it may additionally catch late pre-join floods; never
		// required, never out of order).
		got := make(map[string]bool)
		for _, d := range deliveries[joinID] {
			got[d.name] = true
		}
		for _, name := range sentAfterJoin {
			if !got[name] {
				t.Fatalf("seed %d: joiner missed post-join message %q; delivered %d msgs",
					seed, name, len(deliveries[joinID]))
			}
		}
		// Surviving veterans must have delivered every message sent by a
		// live member, pre- and post-join alike.
		wantAll := 0
		for id := range alive {
			if id == joinID {
				continue
			}
			if wantAll == 0 {
				wantAll = len(deliveries[id])
			}
			if len(deliveries[id]) != wantAll {
				t.Fatalf("seed %d: veteran delivery counts disagree: node %d has %d, expected %d",
					seed, id, len(deliveries[id]), wantAll)
			}
		}
	}
}

// TestLiveNetRace exercises scalecast's internal synchronization on
// real goroutines: LiveNet delivers packets on per-node dispatcher
// goroutines while ack/nack/heartbeat timers fire on timer goroutines.
// Run under -race (make verify does) this is the data-race regression
// test for the member lock.
func TestLiveNetRace(t *testing.T) {
	net := transport.NewLiveNet(transport.LinkConfig{Jitter: 2 * time.Millisecond, LossProb: 0.05}, 1)
	defer net.Close()
	const n = 8
	nodes := make([]transport.NodeID, n)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
	}
	var mu sync.Mutex
	counts := make([]int, n)
	done := make(chan struct{}, 1024)
	var members []*Member
	members = NewGroup(net, nodes, Config{Group: "live",
		AckInterval: 5 * time.Millisecond, NackDelay: 5 * time.Millisecond,
		Heartbeat: 10 * time.Millisecond},
		func(rank vclock.ProcessID) multicast.DeliverFunc {
			return func(d multicast.Delivered) {
				mu.Lock()
				counts[rank]++
				mu.Unlock()
				// Reactive chains from inside the callback.
				if s, ok := d.Payload.(string); ok && s == "ping" && rank == 3 {
					members[rank].Multicast("pong", 4)
				}
				done <- struct{}{}
			}
		})
	const base = 20
	for i := 0; i < base; i++ {
		members[i%n].Multicast("ping", 4)
		time.Sleep(time.Millisecond)
	}
	// pings fan a pong from rank 3 per ping: (base + base) * n total
	// deliveries expected; loss is recovered by nack/heartbeat.
	want := 2 * base * n
	deadline := time.After(20 * time.Second)
	for i := 0; i < want; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("timed out after %d of %d deliveries", i, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for r, c := range counts {
		if c != 2*base {
			t.Fatalf("member %d delivered %d, want %d", r, c, 2*base)
		}
	}
}
