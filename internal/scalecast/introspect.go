package scalecast

import (
	"catocs/internal/flowcontrol"
	"catocs/internal/obs"
)

// WindowState snapshots the member's ingress admission window (the
// budget over its link retransmission logs) for the live observability
// plane.
func (m *Member) WindowState() flowcontrol.WindowState {
	m.mu.Lock()
	defer m.mu.Unlock()
	msgs, bytes := m.retransLocked()
	return flowcontrol.WindowState{
		Node:   int(m.self),
		Window: m.cfg.Budget,
		Policy: m.cfg.Overflow,
		Msgs:   msgs,
		Bytes:  bytes,
		Parked: len(m.blocked),
	}
}

// ObsStatus implements obs.Introspector: the flood member's live
// state — link holdback depth, retransmission-buffer occupancy,
// ingress-window occupancy, parked casts, overlay degree, barrier
// epoch. The member locks internally, so this is safe from any
// context, but the live plane still consumes published copies.
func (m *Member) ObsStatus() obs.Status {
	ws := m.WindowState()
	m.mu.Lock()
	defer m.mu.Unlock()
	return obs.Status{
		Component: "scalecast",
		Node:      int(m.self),
		Fields: []obs.StatusField{
			obs.DistNum("holdback_depth", float64(m.pendingCountLocked())),
			obs.DistNum("retrans_buffer", float64(ws.Msgs)),
			obs.DistNum("window_occupancy", ws.Occupancy()),
			obs.DistNum("parked_casts", float64(ws.Parked)),
			obs.Num("degree", float64(len(m.order))),
			obs.Num("epoch", float64(m.sessionNo)),
			obs.Str("policy", m.cfg.Overflow.String()),
		},
	}
}

var _ obs.Introspector = (*Member)(nil)
