package scalecast

import (
	"fmt"

	"catocs/internal/transport"
)

// Hybrid buffering (Almeida-style): in steady state nothing above the
// per-link FIFO machinery buffers at all — causal order is free. Only
// a topology change opens a buffering window, and only on the links it
// adds:
//
//   - A link added between two established members buffers inbound
//     packets until the receiver delivers the sender's *causal
//     barrier*, a control message flooded over the pre-existing
//     overlay. Everything the sender had delivered before creating
//     the link causally precedes the barrier, so once the barrier is
//     delivered the new shortcut cannot run ahead of its causal past;
//     the buffered packets then flush in link-FIFO order, which the
//     sender's forward-before-deliver discipline keeps causally
//     consistent.
//
//   - A fresh member (nothing delivered yet) bootstraps differently:
//     its own out-links carry its entire causal history from birth
//     ("born fresh"), so a peer may activate them immediately on a
//     direct marker. Inbound, the fresh member activates its first
//     link on the marker alone and adopts the sender's delivered map
//     as a *causal cut*: everything at or below the cut is pre-join
//     causal past, counted as already seen (state transfer is the
//     application's job, as in internal/group). Late copies of
//     pre-join messages flushing from other links then dedup away
//     instead of delivering behind their causal successors. The cut
//     is O(N) — but it travels once per join, not on every message:
//     metadata proportional to churn, constant in steady state, which
//     is the §5 trade scalecast exists to demonstrate.

// barrierPayload is the causal cut marker flooded over the overlay
// when a link is added: once To delivers it, the link From→To is
// causally safe to activate.
type barrierPayload struct {
	From transport.NodeID
	To   transport.NodeID
	Gen  uint64 // the link's out-session at From
}

// barrierPayloadSize is the ApproxSize contribution of a flooded
// barrier (it is all control bytes).
const barrierPayloadSize = 24

// LinkBarrier is the direct on-link half of the activation handshake:
// it announces the link's session, whether the sender's out-stream is
// complete from birth (Fresh), and the sender's delivered map at link
// creation (the causal cut a fresh receiver adopts).
type LinkBarrier struct {
	Group   string
	Session uint64
	Fresh   bool
	Cut     map[transport.NodeID]uint64
}

// ApproxSize implements transport.Sizer; the cut costs 16 bytes per
// origin, paid per topology change rather than per message.
func (p *LinkBarrier) ApproxSize() int { return 25 + 16*len(p.Cut) }

// LinkBarrierAck confirms activation so the peer stops re-announcing.
type LinkBarrierAck struct {
	Group   string
	Session uint64
}

// ApproxSize implements transport.Sizer.
func (p *LinkBarrierAck) ApproxSize() int { return 24 }

// virgin reports whether this member may bootstrap-activate a link
// directly: it has delivered nothing external and has no active
// inbound link, so adopting the peer's cut cannot contradict anything
// already delivered.
func (m *Member) virgin() bool {
	if m.externalDeliveries > 0 {
		return false
	}
	for _, l := range m.links {
		if !l.pendingIn {
			return false
		}
	}
	return true
}

// sendBarriers announces a new link: the direct marker (bootstrap for
// fresh endpoints) and the flooded causal barrier (activation path
// between established members). Re-sent each heartbeat until acked.
func (m *Member) sendBarriers(l *link) {
	l.barrierNeeded = true
	cut := make(map[transport.NodeID]uint64, len(l.outCut))
	for id, seq := range l.outCut {
		cut[id] = seq
	}
	m.sendCtrl(l.peer, &LinkBarrier{Group: m.cfg.Group, Session: l.outSession, Fresh: l.bornFresh, Cut: cut})
	m.floodInternal(barrierPayload{From: m.self, To: l.peer, Gen: l.outSession})
	m.armHeartbeat()
}

// floodInternal broadcasts a protocol-internal payload through the
// same flood machinery as application traffic, so it is causally
// ordered against it.
func (m *Member) floodInternal(payload barrierPayload) {
	if m.closed {
		return
	}
	m.originSeq++
	fm := &FloodMsg{
		Group:       m.cfg.Group,
		Origin:      m.self,
		Seq:         m.originSeq,
		SentAt:      m.net.Now(),
		Payload:     payload,
		PayloadSize: barrierPayloadSize,
	}
	m.CtrlMsgs.Inc()
	m.forwardFlood(fm, m.self)
	m.deliverLocal(fm)
}

// onLinkBarrier handles the direct marker.
func (m *Member) onLinkBarrier(from transport.NodeID, b *LinkBarrier) {
	l := m.links[from]
	if l == nil || b.Session < l.inSession {
		return
	}
	if b.Session > l.inSession {
		m.adoptSession(l, b.Session)
	}
	if !l.pendingIn {
		// Already active (ack was lost): just re-confirm.
		m.sendCtrl(from, &LinkBarrierAck{Group: m.cfg.Group, Session: l.inSession})
		return
	}
	if b.Fresh {
		// The peer's out-stream is complete from its birth; nothing can
		// arrive on it ahead of its causal past.
		m.activateLink(l)
		return
	}
	if m.virgin() {
		// Bootstrap: adopt the peer's causal cut as pre-join past, then
		// ride its stream, which is complete above the cut.
		for id, seq := range b.Cut {
			if seq > m.delivered[id] {
				m.delivered[id] = seq
			}
		}
		m.activateLink(l)
	}
	// Otherwise wait for the flooded barrier to arrive causally.
}

// onBarrierDelivered runs when a flooded barrier is delivered like any
// other broadcast; only the link's target acts on it.
func (m *Member) onBarrierDelivered(bp barrierPayload) {
	if bp.To != m.self {
		return
	}
	l := m.links[bp.From]
	if l == nil || !l.pendingIn || bp.Gen < l.inSession {
		return
	}
	if bp.Gen > l.inSession {
		m.adoptSession(l, bp.Gen)
	}
	m.activateLink(l)
}

// activateLink ends a link's buffering window: flush in link-FIFO
// order and confirm to the peer.
func (m *Member) activateLink(l *link) {
	l.pendingIn = false
	if m.trace != nil {
		m.trace.SpanEnd(m.net.Now(), int(m.self),
			fmt.Sprintf("link-activation peer=%d", l.peer))
	}
	buffered := l.buffered
	l.buffered = nil
	for _, fm := range buffered {
		m.acceptFlood(fm, l.peer)
	}
	m.sendCtrl(l.peer, &LinkBarrierAck{Group: m.cfg.Group, Session: l.inSession})
	m.updateGauge()
}

// onLinkBarrierAck stops re-announcing an activated link.
func (m *Member) onLinkBarrierAck(from transport.NodeID, ack *LinkBarrierAck) {
	l := m.links[from]
	if l == nil || ack.Session != l.outSession {
		return
	}
	l.barrierNeeded = false
	l.outCut = nil
}
