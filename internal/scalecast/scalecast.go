// Package scalecast implements causal broadcast with constant-size
// per-message control metadata — the modern answer to the paper's §5
// scalability critique of CATOCS, and the second broadcast substrate
// this repository measures CBCAST against (experiment E16).
//
// The CBCAST stack in internal/multicast stamps every message with a
// vector clock: O(N) header bytes per message plus O(N) unstable-state
// buffering, which is exactly the growth §5 charges against causally
// ordered communication. Nédelec et al. ("Breaking the Scalability
// Barrier of Causal Broadcast for Large and Dynamic Systems") and
// Almeida ("Space-Optimal Causal Delivery through Hybrid Buffering")
// observe that the clocks are redundant once dissemination itself is
// constrained: flood messages over a connected bounded-degree overlay
// of reliable FIFO links, forward every first-received message to all
// neighbours before delivering it, and causal order falls out of the
// topology. The wire then carries only (origin, sequence) — constant
// in group size.
//
// The package has three layers plus a façade:
//
//   - overlay.go builds a bounded-degree circulant overlay over a
//     transport.Network node set, with deterministic neighbour
//     selection and join/leave re-wiring.
//   - flood.go makes each overlay link a reliable FIFO channel over
//     the lossy transport: per-link sessions and sequence numbers,
//     out-of-order holdback, NACK-driven retransmission from per-link
//     send logs, heartbeats for lost-tail detection, and cumulative
//     acks that prune the logs (the hybrid buffer: retransmission
//     state lives per link and drains at ack round-trips, not at
//     group-wide stability).
//   - buffer.go handles reconfiguration: a link added by a re-wire
//     buffers inbound traffic until a causal barrier — flooded over
//     the pre-existing overlay — is delivered, so a new shortcut can
//     never deliver a message ahead of its causal past (Almeida's
//     "buffer only around topology changes").
//
// The Member façade mirrors internal/multicast.Member (Multicast,
// Close, PendingCount, the same metrics fields, multicast.Delivered
// callbacks), so the experiment harness and applications run
// unmodified on either substrate.
package scalecast

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"catocs/internal/flowcontrol"
	"catocs/internal/metrics"
	"catocs/internal/multicast"
	"catocs/internal/obs"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// Config parameterizes a scalecast group.
type Config struct {
	// Group names the group; members ignore traffic for other groups.
	Group string
	// Degree is the target overlay degree (rounded down to an even
	// count of circulant offsets). Zero defaults to 4: the ±1 ring plus
	// a ±√N chord, giving O(√N) dissemination diameter at constant
	// per-node fan-out.
	Degree int
	// AckInterval is the delay before a member acknowledges per-link
	// delivery progress (prunes the peer's retransmission log). Zero
	// defaults to 20ms.
	AckInterval time.Duration
	// NackDelay is how long a detected per-link gap may age before the
	// member requests retransmission. Zero defaults to 25ms.
	NackDelay time.Duration
	// Heartbeat is the interval at which a member with unacknowledged
	// link traffic (or an unacknowledged barrier) re-advertises it, so
	// a lost final packet is eventually recovered. Zero defaults to
	// 40ms.
	Heartbeat time.Duration
	// Tracer, when non-nil, records the member's message lifecycle
	// (send, holdback, deliver) and reconfiguration spans into the
	// causal trace recorder. The causal context stamped on events is
	// the member's barrier epoch (its link-session counter), the
	// scalecast analogue of CBCAST's vector clock. Nil disables
	// tracing at nil-check cost.
	Tracer *obs.Tracer
	// Budget bounds the member's total link retransmission buffer (the
	// hybrid buffer E16 measures), counted across all links. Zero is
	// unlimited.
	Budget flowcontrol.Budget
	// Overflow selects the overlay-ingress reaction when the budget is
	// reached: Block parks this member's own casts until link acks
	// prune the logs; Shed rejects them counted and traced. Spill and
	// Suspect degrade to Block — scalecast keeps no group-wide
	// stability matrix to spill against or accuse from. Relayed
	// traffic is always admitted: forwarding is mandatory for causal
	// order, so only the origin's own offered load is throttled.
	Overflow flowcontrol.Policy
}

func (c Config) ackInterval() time.Duration {
	if c.AckInterval > 0 {
		return c.AckInterval
	}
	return 20 * time.Millisecond
}

func (c Config) nackDelay() time.Duration {
	if c.NackDelay > 0 {
		return c.NackDelay
	}
	return 25 * time.Millisecond
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return 40 * time.Millisecond
}

func (c Config) degree() int {
	if c.Degree > 0 {
		return c.Degree
	}
	return 4
}

// futureEntry is a defensively buffered flood message that arrived
// ahead of its per-origin predecessor (possible only transiently around
// reconfiguration), remembered with its source link for forwarding.
type futureEntry struct {
	msg  *FloodMsg
	from transport.NodeID
}

// originKey identifies one broadcast for the future buffer.
type originKey struct {
	origin transport.NodeID
	seq    uint64
}

// Member is one endpoint of a scalecast group. Unlike
// multicast.Member, the member synchronizes internally: over LiveNet
// its timers fire on timer goroutines while packets arrive on the
// node's dispatcher goroutine, so every entry point takes the member
// lock. Delivery callbacks run outside the lock (via a small outbox),
// so a callback may re-enter Multicast — the reactive idiom the causal
// tests rely on.
type Member struct {
	cfg     Config
	net     transport.Network
	mu      sync.Mutex
	nodes   []transport.NodeID // current view, defines the overlay
	self    transport.NodeID
	deliver multicast.DeliverFunc
	outbox  []multicast.Delivered // deliveries pending callback, flushed unlocked
	closed  bool

	originSeq uint64 // my broadcast counter

	// delivered is the contiguous per-origin delivered count — the
	// only per-peer state, and it is delivery bookkeeping, not wire
	// metadata.
	delivered map[transport.NodeID]uint64
	// externalDeliveries counts deliveries of other origins' messages;
	// zero means this member is "fresh" (its out-streams carry its
	// entire causal history, the join fast-path of buffer.go).
	externalDeliveries uint64

	links     map[transport.NodeID]*link
	order     []transport.NodeID // sorted link peers, for determinism
	sessionNo uint64             // monotonic per-member link session source

	future map[originKey]futureEntry

	ackArmed  bool
	nackArmed bool
	hbArmed   bool

	// blocked holds this member's own casts parked at the ingress
	// admission window (flowcontrol.go).
	blocked []blockedFlood

	// Instrumentation; field names mirror multicast.Member so the
	// harness reads either substrate identically.
	Latency        metrics.Histogram // delivery latency (seconds)
	HoldbackGauge  metrics.Gauge     // link holdback + reconfig buffers
	DeliveredCount metrics.Counter
	SentCount      metrics.Counter
	CtrlMsgs       metrics.Counter   // protocol (non-data) messages sent
	Duplicates     metrics.Counter   // duplicate data copies discarded
	ForwardedMsgs  metrics.Counter   // data copies relayed for other origins
	AdmissionStall metrics.Histogram // ingress-window stall (seconds)
	ShedCount      metrics.Counter   // casts rejected by the Shed policy

	trace *obs.Tracer // optional lifecycle recorder (Config.Tracer)
}

// NewMember creates one group endpoint with active links to its
// overlay neighbours and registers its handler on the network. Use it
// when constructing a whole group before traffic starts; a process
// entering a running group must use JoinMember so its links perform
// the causal-barrier handshake.
func NewMember(net transport.Network, nodes []transport.NodeID, self transport.NodeID, cfg Config, deliver multicast.DeliverFunc) *Member {
	return newMember(net, nodes, self, cfg, deliver, false)
}

// JoinMember creates an endpoint entering an already-running group:
// its overlay links come up buffering (pending) and activate through
// the barrier protocol, so the joiner cannot deliver causally out of
// order during the wiring-in window. The surviving members must be
// re-wired to the same view (Rewire) for the overlay to converge. A
// joiner observes the causal future only: messages broadcast before
// its links activate are not replayed (state transfer is the
// application's job, as in internal/group).
func JoinMember(net transport.Network, nodes []transport.NodeID, self transport.NodeID, cfg Config, deliver multicast.DeliverFunc) *Member {
	return newMember(net, nodes, self, cfg, deliver, true)
}

func newMember(net transport.Network, nodes []transport.NodeID, self transport.NodeID, cfg Config, deliver multicast.DeliverFunc, joining bool) *Member {
	if deliver == nil {
		deliver = func(multicast.Delivered) {}
	}
	m := &Member{
		cfg:       cfg,
		net:       net,
		nodes:     append([]transport.NodeID(nil), nodes...),
		self:      self,
		deliver:   deliver,
		delivered: make(map[transport.NodeID]uint64),
		links:     make(map[transport.NodeID]*link),
		future:    make(map[originKey]futureEntry),
		trace:     cfg.Tracer,
	}
	if m.rank() < 0 {
		panic(fmt.Sprintf("scalecast: node %d not in view %v", self, nodes))
	}
	for _, peer := range overlayNeighbors(m.nodes, self, cfg.degree()) {
		m.addLink(peer, joining)
	}
	net.Register(self, m.Handle)
	return m
}

// NewGroup builds a full group of len(nodes) members. deliverFor
// supplies each rank's delivery callback (may return nil for a sink).
func NewGroup(net transport.Network, nodes []transport.NodeID, cfg Config, deliverFor func(rank vclock.ProcessID) multicast.DeliverFunc) []*Member {
	members := make([]*Member, len(nodes))
	for i, id := range nodes {
		var d multicast.DeliverFunc
		if deliverFor != nil {
			d = deliverFor(vclock.ProcessID(i))
		}
		members[i] = NewMember(net, nodes, id, cfg, d)
	}
	return members
}

// rank returns this member's index in the current view, or -1.
func (m *Member) rank() int {
	for i, id := range m.nodes {
		if id == m.self {
			return i
		}
	}
	return -1
}

// Rank returns this member's rank in the current view.
func (m *Member) Rank() vclock.ProcessID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return vclock.ProcessID(m.rank())
}

// Node returns this member's transport address.
func (m *Member) Node() transport.NodeID { return m.self }

// GroupSize returns the current view size.
func (m *Member) GroupSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.nodes)
}

// ViewNodes returns a copy of the current view's node list.
func (m *Member) ViewNodes() []transport.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]transport.NodeID(nil), m.nodes...)
}

// Neighbors returns the member's current overlay peers in sorted
// order.
func (m *Member) Neighbors() []transport.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]transport.NodeID(nil), m.order...)
}

// PendingCount returns the messages currently withheld from delivery:
// link holdback, reconfiguration buffers, and the defensive per-origin
// future buffer. The scalecast analogue of the CBCAST delay queue.
func (m *Member) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pendingCountLocked()
}

func (m *Member) pendingCountLocked() int {
	n := len(m.future)
	for _, l := range m.links {
		n += len(l.inHold) + len(l.buffered)
	}
	return n
}

// RetransBufferCount returns the messages buffered for possible
// retransmission across all link send logs — the hybrid buffer whose
// occupancy E16 compares against CBCAST's stability buffer.
func (m *Member) RetransBufferCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, l := range m.links {
		n += len(l.outLog)
	}
	return n
}

// Close permanently silences the member: no further sends, deliveries,
// or timer re-arms.
func (m *Member) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
}

// barrierCtx renders the member's causal context for trace events: the
// barrier epoch (link-session counter) is the only ordering state a
// scalecast member carries, where CBCAST stamps a full vector clock.
func (m *Member) barrierCtx() string {
	return fmt.Sprintf("barrier-epoch=%d", m.sessionNo)
}

// addLink creates link state toward peer. pending links buffer inbound
// traffic until the barrier protocol activates them (buffer.go).
func (m *Member) addLink(peer transport.NodeID, pending bool) {
	m.sessionNo++
	l := &link{
		peer:       peer,
		outSession: m.sessionNo,
		outLog:     make(map[uint64]*LinkPacket),
		inHold:     make(map[uint64]*LinkPacket),
		inNext:     1,
		pendingIn:  pending,
		// bornFresh: this link has existed since the member's birth and
		// the member has delivered nothing external, so its out-stream
		// carries its entire causal history (see buffer.go).
		bornFresh: pending && m.externalDeliveries == 0,
	}
	m.links[peer] = l
	m.order = append(m.order, peer)
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
	if pending {
		if m.trace != nil {
			m.trace.SpanBegin(m.net.Now(), int(m.self),
				fmt.Sprintf("link-activation peer=%d", peer))
		}
		l.outCut = make(map[transport.NodeID]uint64, len(m.delivered))
		for id, seq := range m.delivered {
			l.outCut[id] = seq
		}
		m.sendBarriers(l)
	}
}

// dropLink discards all state toward peer.
func (m *Member) dropLink(peer transport.NodeID) {
	delete(m.links, peer)
	for i, id := range m.order {
		if id == peer {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.updateGauge()
}

// updateGauge publishes current holdback occupancy.
func (m *Member) updateGauge() { m.HoldbackGauge.Set(int64(m.pendingCountLocked())) }

// Multicast broadcasts payload (with an approximate encoded size in
// bytes) to the group: the message floods the overlay carrying only
// (origin, seq) — control metadata constant in group size. It returns
// the message id (Sender is the origin's NodeID as a ProcessID).
// Per-origin ids are delivered in strictly increasing order but may
// skip values: protocol-internal barrier broadcasts share the
// sequence space and are never surfaced to the application.
func (m *Member) Multicast(payload any, size int) multicast.MsgID {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return multicast.MsgID{}
	}
	if !m.admitLocked(payload, size) {
		m.mu.Unlock()
		return multicast.MsgID{}
	}
	id := m.multicastLocked(payload, size)
	m.flushUnlock()
	return id
}

// multicastLocked stamps and floods a cast the ingress window has
// cleared (or that no window governs). Caller holds the lock.
func (m *Member) multicastLocked(payload any, size int) multicast.MsgID {
	m.originSeq++
	fm := &FloodMsg{
		Group:       m.cfg.Group,
		Origin:      m.self,
		Seq:         m.originSeq,
		SentAt:      m.net.Now(),
		Payload:     payload,
		PayloadSize: size,
	}
	m.SentCount.Inc()
	if ref := fm.TraceRef(); m.trace.Wants(ref) {
		m.trace.Send(fm.SentAt, int(m.self), ref, m.barrierCtx())
	}
	// Forward before delivering: the origin's copy goes onto every
	// link ahead of anything the delivery callback may broadcast in
	// reaction, which is the invariant causal order rests on.
	m.forwardFlood(fm, m.self)
	m.deliverLocal(fm)
	return fm.ID()
}

// forwardFlood relays a first-received message to every overlay link
// except the one it arrived on and the origin itself.
func (m *Member) forwardFlood(fm *FloodMsg, from transport.NodeID) {
	relaying := from != m.self
	for _, peer := range m.order {
		if peer == from || peer == fm.Origin {
			continue
		}
		out := *fm
		if relaying {
			out.Hops = fm.Hops + 1
			m.ForwardedMsgs.Inc()
		}
		m.sendOnLink(m.links[peer], &out)
	}
}

// acceptFlood handles a flood message surfacing from a link in FIFO
// order: dedup, forward, deliver, and drain any defensively buffered
// successors.
func (m *Member) acceptFlood(fm *FloodMsg, from transport.NodeID) {
	next := m.delivered[fm.Origin] + 1
	if fm.Seq < next {
		m.Duplicates.Inc()
		return
	}
	if fm.Seq > next {
		// Out of per-origin order: impossible over steady-state FIFO
		// links, defensively buffered around reconfigurations.
		key := originKey{fm.Origin, fm.Seq}
		if _, dup := m.future[key]; !dup {
			m.future[key] = futureEntry{msg: fm, from: from}
			m.updateGauge()
			if m.trace != nil {
				m.trace.Holdback(m.net.Now(), int(m.self), fm.TraceRef(), "future origin gap")
			}
		}
		return
	}
	// A redundant copy of this very seq may sit in the future buffer
	// (arrived early on another link); it is superseded now.
	if _, stale := m.future[originKey{fm.Origin, fm.Seq}]; stale {
		delete(m.future, originKey{fm.Origin, fm.Seq})
		m.updateGauge()
	}
	m.forwardFlood(fm, from)
	m.deliverLocal(fm)
	// Drain buffered successors, re-reading the delivered frontier each
	// step: deliverLocal may recurse through this function (a delivered
	// barrier activates a link whose flush advances the same origin), so
	// walking from fm.Seq alone could re-deliver what the recursion
	// already surfaced.
	for {
		key := originKey{fm.Origin, m.delivered[fm.Origin] + 1}
		fe, ok := m.future[key]
		if !ok {
			break
		}
		delete(m.future, key)
		m.updateGauge()
		m.forwardFlood(fe.msg, fe.from)
		m.deliverLocal(fe.msg)
	}
}

// deliverLocal finalizes delivery of one message: bookkeeping, metrics,
// internal barrier handling, and the application callback.
func (m *Member) deliverLocal(fm *FloodMsg) {
	m.delivered[fm.Origin] = fm.Seq
	if fm.Origin != m.self {
		m.externalDeliveries++
	}
	if bp, ok := fm.Payload.(barrierPayload); ok {
		// Barriers are protocol-internal: they mark a causal cut for
		// link activation and never reach the application.
		if m.trace != nil {
			m.trace.Mark(m.net.Now(), int(m.self),
				fmt.Sprintf("barrier delivered from=%d to=%d gen=%d", bp.From, bp.To, bp.Gen))
		}
		m.onBarrierDelivered(bp)
		return
	}
	now := m.net.Now()
	lat := now - fm.SentAt
	m.Latency.Observe(lat.Seconds())
	m.DeliveredCount.Inc()
	if ref := fm.TraceRef(); m.trace.Wants(ref) {
		m.trace.Deliver(now, int(m.self), ref, m.barrierCtx())
	}
	m.outbox = append(m.outbox, multicast.Delivered{
		ID:      fm.ID(),
		Payload: fm.Payload,
		SentAt:  fm.SentAt,
		At:      now,
		Latency: lat,
	})
}

// flushUnlock hands any pending deliveries to the application after
// releasing the member lock, so a callback may call back in. Must be
// called with the lock held; returns with it released.
func (m *Member) flushUnlock() {
	out := m.outbox
	m.outbox = nil
	cb := m.deliver
	m.mu.Unlock()
	for _, d := range out {
		cb(d)
	}
}

// locked runs one protocol step under the member lock and then flushes
// deliveries.
func (m *Member) locked(f func()) {
	m.mu.Lock()
	f()
	m.flushUnlock()
}

// Handle is the member's network receive entry point.
func (m *Member) Handle(from transport.NodeID, payload any) {
	m.locked(func() { m.handleLocked(from, payload) })
}

func (m *Member) handleLocked(from transport.NodeID, payload any) {
	if m.closed {
		return
	}
	switch pkt := payload.(type) {
	case *LinkPacket:
		if pkt.Group != m.cfg.Group {
			return
		}
		m.onLinkPacket(from, pkt)
	case *LinkAck:
		if pkt.Group != m.cfg.Group {
			return
		}
		m.onLinkAck(from, pkt)
	case *LinkNack:
		if pkt.Group != m.cfg.Group {
			return
		}
		m.onLinkNack(from, pkt)
	case *LinkHeartbeat:
		if pkt.Group != m.cfg.Group {
			return
		}
		m.onLinkHeartbeat(from, pkt)
	case *LinkBarrier:
		if pkt.Group != m.cfg.Group {
			return
		}
		m.onLinkBarrier(from, pkt)
	case *LinkBarrierAck:
		if pkt.Group != m.cfg.Group {
			return
		}
		m.onLinkBarrierAck(from, pkt)
	}
}

// sendCtrl transmits a control message to one peer, counting it.
func (m *Member) sendCtrl(to transport.NodeID, msg any) {
	if m.closed {
		return
	}
	m.CtrlMsgs.Inc()
	m.net.Send(m.self, to, msg)
}
