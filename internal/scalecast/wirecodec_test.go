package scalecast

import (
	"reflect"
	"testing"
	"time"

	"catocs/internal/transport"
	"catocs/internal/wire"
)

func sampleLinkMsgs() []any {
	flood := &FloodMsg{
		Group: "sc", Origin: 4, Seq: 12, SentAt: 90 * time.Millisecond,
		Hops: 2, Payload: []byte("xyz"), PayloadSize: 3,
	}
	barrier := &FloodMsg{
		Group: "sc", Origin: 1, Seq: 3,
		Payload: barrierPayload{From: 1, To: 5, Gen: 2}, PayloadSize: barrierPayloadSize,
	}
	return []any{
		&LinkPacket{Group: "sc", Session: 2, Seq: 41, Msg: flood},
		&LinkPacket{Group: "sc", Session: 1, Seq: 1, Msg: barrier},
		&LinkPacket{Group: "sc", Session: 1, Seq: 2, Msg: &FloodMsg{Group: "sc", Origin: 0, Seq: 1}},
		&LinkAck{Group: "sc", Session: 2, Cum: 40},
		&LinkNack{Group: "sc", Session: 2, From: 38, To: 41},
		&LinkHeartbeat{Group: "sc", Session: 2, Top: 44},
		&LinkBarrier{Group: "sc", Session: 3, Fresh: true, Cut: map[transport.NodeID]uint64{0: 4, 7: 1}},
		&LinkBarrier{Group: "sc", Session: 3},
		&LinkBarrierAck{Group: "sc", Session: 3},
	}
}

func TestScalecastWireRoundTrip(t *testing.T) {
	for _, in := range sampleLinkMsgs() {
		kind, buf, err := wire.Marshal(in)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", in, err)
		}
		out, err := wire.Unmarshal(kind, buf)
		if err != nil {
			t.Fatalf("Unmarshal(%T): %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip %T:\n in: %+v\nout: %+v", in, in, out)
		}
	}
}

func TestScalecastWireRejectsTruncation(t *testing.T) {
	for _, in := range sampleLinkMsgs() {
		kind, buf, err := wire.Marshal(in)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", in, err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, err := wire.Unmarshal(kind, buf[:cut]); err == nil {
				t.Fatalf("%T truncated to %d/%d bytes decoded successfully", in, cut, len(buf))
			}
		}
		if _, err := wire.Unmarshal(kind, append(append([]byte(nil), buf...), 1)); err == nil {
			t.Fatalf("%T with trailing garbage decoded successfully", in)
		}
	}
}

func FuzzScalecastWireDecode(f *testing.F) {
	kinds := []wire.Kind{
		wire.KindScalecast + 0, wire.KindScalecast + 1, wire.KindScalecast + 2,
		wire.KindScalecast + 3, wire.KindScalecast + 4, wire.KindScalecast + 5,
	}
	for _, in := range sampleLinkMsgs() {
		_, buf, err := wire.Marshal(in)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint16(0), buf)
	}
	f.Fuzz(func(t *testing.T, kindSel uint16, buf []byte) {
		kind := kinds[int(kindSel)%len(kinds)]
		msg, err := wire.Unmarshal(kind, buf)
		if err != nil {
			return
		}
		kind2, buf2, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("re-encode of decoded %T failed: %v", msg, err)
		}
		if kind2 != kind {
			t.Fatalf("re-encode kind %#04x, want %#04x", uint16(kind2), uint16(kind))
		}
		msg2, err := wire.Unmarshal(kind2, buf2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("decode/encode/decode disagrees:\n 1: %+v\n 2: %+v", msg, msg2)
		}
	})
}
