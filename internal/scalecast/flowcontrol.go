package scalecast

import (
	"fmt"
	"time"

	"catocs/internal/flowcontrol"
)

// This file enforces the flow-control budget at the scalecast overlay
// ingress. The bounded resource is the member's link retransmission
// logs — the hybrid buffer E16 measures — which grow when a neighbour
// stops acking (the scalecast face of the paper's §5 slow-consumer
// problem). Only the member's own offered load is throttled: a relay
// MUST forward, because withholding a relayed message would silently
// break causal order for everyone downstream of this node's overlay
// position. Throttling the origin is both sufficient (every log entry
// traces back to some origin's cast) and safe (an unsent cast has no
// causal successors to strand).

// blockedFlood is an application cast parked at the ingress window.
type blockedFlood struct {
	payload any
	size    int
	at      time.Duration
}

// BlockedCount returns the number of casts parked at the ingress
// window.
func (m *Member) BlockedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocked)
}

// RetransCount returns the total entries across this member's link
// retransmission logs — the occupancy the ingress budget bounds.
func (m *Member) RetransCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	msgs, _ := m.retransLocked()
	return msgs
}

// retransLocked totals the link retransmission logs in messages and
// bytes. Caller holds the lock.
func (m *Member) retransLocked() (msgs, bytes int) {
	for _, l := range m.links {
		msgs += len(l.outLog)
		for _, pkt := range l.outLog {
			bytes += pkt.ApproxSize()
		}
	}
	return msgs, bytes
}

// admitLocked applies the overflow policy to a new own cast. True
// means flood now; false means the cast was parked or shed. One cast
// logs one copy per link, so the projected occupancy grows by the
// overlay degree, not by one. Caller holds the lock.
func (m *Member) admitLocked(payload any, size int) bool {
	b := m.cfg.Budget
	if !b.Limited() || m.cfg.Overflow == flowcontrol.None {
		return true
	}
	copies := len(m.order)
	msgs, bytes := m.retransLocked()
	// FIFO within the origin: nothing may overtake a parked cast.
	if len(m.blocked) == 0 && !b.Exceeded(msgs+copies, bytes+copies*size) {
		return true
	}
	if m.cfg.Overflow == flowcontrol.Shed {
		m.ShedCount.Inc()
		if m.trace != nil {
			m.trace.Mark(m.net.Now(), int(m.self),
				fmt.Sprintf("shed cast size=%dB budget=%s", size, b))
		}
		return false
	}
	// Block (and Spill/Suspect, which degrade to it here).
	m.blocked = append(m.blocked, blockedFlood{payload: payload, size: size, at: m.net.Now()})
	return false
}

// drainBlockedLocked re-admits parked casts in FIFO order as far as
// the budget allows; called when link acks prune the retransmission
// logs. Caller holds the lock (deliveries flush via the caller's
// flushUnlock).
func (m *Member) drainBlockedLocked() {
	if m.closed || len(m.blocked) == 0 {
		return
	}
	now := m.net.Now()
	for len(m.blocked) > 0 {
		b := m.blocked[0]
		copies := len(m.order)
		msgs, bytes := m.retransLocked()
		if m.cfg.Budget.Exceeded(msgs+copies, bytes+copies*b.size) {
			return
		}
		m.blocked = m.blocked[1:]
		m.AdmissionStall.Observe((now - b.at).Seconds())
		m.multicastLocked(b.payload, b.size)
	}
}
