package scalecast

import (
	"fmt"
	"sort"
	"time"

	"catocs/internal/transport"
	"catocs/internal/wire"
)

// Wire codec registrations for the six scalecast link-layer types, so
// the TCP transport can carry an overlay across OS processes. A
// FloodMsg never travels bare — every hop wraps it in a LinkPacket —
// so it is encoded inline rather than registered. Its payload on the
// wire is nil, []byte, or the flooded causal-barrier marker
// (barrierPayload), which gets its own tag byte: the barrier is
// protocol traffic that must survive serialization for reconfiguration
// to work across processes.

const (
	scMaxGroup   = 1 << 10 // group name bytes
	scMaxPayload = 1 << 26 // flood payload bytes
	scMaxCut     = 1 << 20 // causal-cut entries
)

// FloodMsg payload tags on the wire.
const (
	floodPayloadNil     = 0x00
	floodPayloadBytes   = 0x01
	floodPayloadBarrier = 0x02
)

func init() {
	wire.Register(wire.KindScalecast+0, &LinkPacket{}, encLinkPacket, decLinkPacket)
	wire.Register(wire.KindScalecast+1, &LinkAck{}, encLinkAck, decLinkAck)
	wire.Register(wire.KindScalecast+2, &LinkNack{}, encLinkNack, decLinkNack)
	wire.Register(wire.KindScalecast+3, &LinkHeartbeat{}, encLinkHeartbeat, decLinkHeartbeat)
	wire.Register(wire.KindScalecast+4, &LinkBarrier{}, encLinkBarrier, decLinkBarrier)
	wire.Register(wire.KindScalecast+5, &LinkBarrierAck{}, encLinkBarrierAck, decLinkBarrierAck)
}

func encFloodMsg(w *wire.Writer, m *FloodMsg) error {
	if len(m.Group) > scMaxGroup {
		return fmt.Errorf("scalecast: group name %d bytes exceeds wire limit %d", len(m.Group), scMaxGroup)
	}
	w.String(m.Group)
	w.I64(int64(m.Origin))
	w.U64(m.Seq)
	w.I64(int64(m.SentAt))
	w.U32(uint32(m.Hops))
	w.U32(uint32(m.PayloadSize))
	switch p := m.Payload.(type) {
	case nil:
		w.U8(floodPayloadNil)
	case []byte:
		if len(p) > scMaxPayload {
			return fmt.Errorf("scalecast: payload %d bytes exceeds wire limit %d", len(p), scMaxPayload)
		}
		w.U8(floodPayloadBytes)
		w.Bytes32(p)
	case barrierPayload:
		w.U8(floodPayloadBarrier)
		w.I64(int64(p.From))
		w.I64(int64(p.To))
		w.U64(p.Gen)
	default:
		return fmt.Errorf("scalecast: cannot encode flood payload of type %T (want []byte, nil, or barrier)", m.Payload)
	}
	return nil
}

func decFloodMsg(r *wire.Reader) *FloodMsg {
	m := &FloodMsg{
		Group:  r.String(scMaxGroup),
		Origin: transport.NodeID(r.I64()),
		Seq:    r.U64(),
		SentAt: time.Duration(r.I64()),
		Hops:   int(r.U32()),
	}
	m.PayloadSize = int(r.U32())
	switch tag := r.U8(); tag {
	case floodPayloadNil:
	case floodPayloadBytes:
		if b := r.Bytes32(scMaxPayload); b != nil {
			m.Payload = b
		}
	case floodPayloadBarrier:
		m.Payload = barrierPayload{
			From: transport.NodeID(r.I64()),
			To:   transport.NodeID(r.I64()),
			Gen:  r.U64(),
		}
	default:
		// Poison: unknown payload tag.
		r.Take(scMaxPayload + 1)
	}
	return m
}

func encLinkPacket(payload any) ([]byte, error) {
	p := payload.(*LinkPacket)
	if p.Msg == nil {
		return nil, fmt.Errorf("scalecast: LinkPacket with nil Msg")
	}
	w := wire.NewWriter(64 + len(p.Group) + p.Msg.PayloadSize)
	w.String(p.Group)
	w.U64(p.Session)
	w.U64(p.Seq)
	if err := encFloodMsg(w, p.Msg); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

func decLinkPacket(buf []byte) (any, error) {
	r := wire.NewReader(buf)
	p := &LinkPacket{
		Group:   r.String(scMaxGroup),
		Session: r.U64(),
		Seq:     r.U64(),
	}
	p.Msg = decFloodMsg(r)
	if err := r.Finish("scalecast.LinkPacket"); err != nil {
		return nil, err
	}
	return p, nil
}

func encLinkAck(payload any) ([]byte, error) {
	p := payload.(*LinkAck)
	w := wire.NewWriter(24 + len(p.Group))
	w.String(p.Group)
	w.U64(p.Session)
	w.U64(p.Cum)
	return w.Bytes(), nil
}

func decLinkAck(buf []byte) (any, error) {
	r := wire.NewReader(buf)
	p := &LinkAck{Group: r.String(scMaxGroup), Session: r.U64(), Cum: r.U64()}
	if err := r.Finish("scalecast.LinkAck"); err != nil {
		return nil, err
	}
	return p, nil
}

func encLinkNack(payload any) ([]byte, error) {
	p := payload.(*LinkNack)
	w := wire.NewWriter(32 + len(p.Group))
	w.String(p.Group)
	w.U64(p.Session)
	w.U64(p.From)
	w.U64(p.To)
	return w.Bytes(), nil
}

func decLinkNack(buf []byte) (any, error) {
	r := wire.NewReader(buf)
	p := &LinkNack{Group: r.String(scMaxGroup), Session: r.U64(), From: r.U64(), To: r.U64()}
	if err := r.Finish("scalecast.LinkNack"); err != nil {
		return nil, err
	}
	return p, nil
}

func encLinkHeartbeat(payload any) ([]byte, error) {
	p := payload.(*LinkHeartbeat)
	w := wire.NewWriter(24 + len(p.Group))
	w.String(p.Group)
	w.U64(p.Session)
	w.U64(p.Top)
	return w.Bytes(), nil
}

func decLinkHeartbeat(buf []byte) (any, error) {
	r := wire.NewReader(buf)
	p := &LinkHeartbeat{Group: r.String(scMaxGroup), Session: r.U64(), Top: r.U64()}
	if err := r.Finish("scalecast.LinkHeartbeat"); err != nil {
		return nil, err
	}
	return p, nil
}

func encLinkBarrier(payload any) ([]byte, error) {
	p := payload.(*LinkBarrier)
	if len(p.Cut) > scMaxCut {
		return nil, fmt.Errorf("scalecast: causal cut of %d entries exceeds wire limit %d", len(p.Cut), scMaxCut)
	}
	w := wire.NewWriter(32 + len(p.Group) + 16*len(p.Cut))
	w.String(p.Group)
	w.U64(p.Session)
	w.Bool(p.Fresh)
	// Deterministic order so identical barriers encode identically.
	keys := make([]transport.NodeID, 0, len(p.Cut))
	for k := range p.Cut {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.I64(int64(k))
		w.U64(p.Cut[k])
	}
	return w.Bytes(), nil
}

func decLinkBarrier(buf []byte) (any, error) {
	r := wire.NewReader(buf)
	p := &LinkBarrier{
		Group:   r.String(scMaxGroup),
		Session: r.U64(),
		Fresh:   r.Bool(),
	}
	n := int(r.U32())
	if n > scMaxCut {
		return nil, fmt.Errorf("scalecast: causal cut of %d entries exceeds wire limit %d", n, scMaxCut)
	}
	if n > 0 {
		p.Cut = make(map[transport.NodeID]uint64, min(n, 1024))
		for i := 0; i < n; i++ {
			k := transport.NodeID(r.I64())
			v := r.U64()
			if r.Err() {
				break
			}
			p.Cut[k] = v
		}
	}
	if err := r.Finish("scalecast.LinkBarrier"); err != nil {
		return nil, err
	}
	return p, nil
}

func encLinkBarrierAck(payload any) ([]byte, error) {
	p := payload.(*LinkBarrierAck)
	w := wire.NewWriter(16 + len(p.Group))
	w.String(p.Group)
	w.U64(p.Session)
	return w.Bytes(), nil
}

func decLinkBarrierAck(buf []byte) (any, error) {
	r := wire.NewReader(buf)
	p := &LinkBarrierAck{Group: r.String(scMaxGroup), Session: r.U64()}
	if err := r.Finish("scalecast.LinkBarrierAck"); err != nil {
		return nil, err
	}
	return p, nil
}
