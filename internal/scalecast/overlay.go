package scalecast

import (
	"fmt"
	"math"
	"sort"

	"catocs/internal/transport"
)

// The overlay is a circulant graph over the view: member i connects to
// i±off for a small set of offsets. Offset 1 (the ring) guarantees
// connectivity; the remaining offsets are Chord-style fingers at
// geometric spacing, so a degree-2h overlay has dissemination diameter
// O(h·N^(1/h)) while every node keeps constant fan-out — the property
// that makes the per-message control metadata independent of N.
//
// The overlay is a pure function of the (ordered) view and the degree,
// so every member computes identical wiring with no coordination, and
// a re-wire is a deterministic diff of two neighbour sets.

// overlayOffsets returns the circulant offsets for n nodes at the
// given target degree (degree/2 distinct offsets, each contributing
// the two neighbours i±off).
func overlayOffsets(n, degree int) []int {
	if n <= 1 {
		return nil
	}
	half := degree / 2
	if half < 1 {
		half = 1
	}
	seen := make(map[int]bool)
	var offs []int
	add := func(o int) {
		o %= n
		if o < 0 {
			o += n
		}
		// i+off and i-(n-off) wire the same undirected links; normalize
		// to the short direction.
		if o > n-o {
			o = n - o
		}
		if o == 0 || seen[o] {
			return
		}
		seen[o] = true
		offs = append(offs, o)
	}
	add(1)
	for j := 1; j < half; j++ {
		// Geometric fingers: n^(1/half), n^(2/half), ... — for the
		// default degree 4 this is the single ±√n chord.
		add(int(math.Round(math.Pow(float64(n), float64(j)/float64(half)))))
	}
	sort.Ints(offs)
	return offs
}

// overlayNeighbors returns the overlay peers of self within the view,
// sorted by NodeID. Small views degenerate gracefully: once the offset
// set covers everyone, the overlay is the complete graph and scalecast
// behaves like direct broadcast.
func overlayNeighbors(view []transport.NodeID, self transport.NodeID, degree int) []transport.NodeID {
	idx := -1
	for i, id := range view {
		if id == self {
			idx = i
		}
	}
	if idx < 0 {
		return nil
	}
	n := len(view)
	set := make(map[transport.NodeID]bool)
	for _, off := range overlayOffsets(n, degree) {
		set[view[(idx+off)%n]] = true
		set[view[(idx-off+n)%n]] = true
	}
	delete(set, self)
	out := make([]transport.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rewire moves the member to a new view: links to peers no longer
// adjacent (or departed) are dropped, surviving links keep their
// sessions and in-flight state, and links to newly adjacent peers come
// up pending — buffering inbound traffic until the causal barrier of
// buffer.go activates them. Every member of the new view must be
// re-wired to the same node list for the overlay to converge; a
// process not yet in the group enters via JoinMember instead.
func (m *Member) Rewire(newNodes []transport.NodeID) {
	m.locked(func() { m.rewireLocked(newNodes) })
}

func (m *Member) rewireLocked(newNodes []transport.NodeID) {
	if m.closed {
		return
	}
	if m.trace != nil {
		m.trace.Mark(m.net.Now(), int(m.self),
			fmt.Sprintf("rewire n=%d", len(newNodes)))
	}
	m.nodes = append([]transport.NodeID(nil), newNodes...)
	if m.rank() < 0 {
		// Departed from the view: drop everything and fall silent, the
		// graceful-leave half of the protocol.
		for _, peer := range append([]transport.NodeID(nil), m.order...) {
			m.dropLink(peer)
		}
		m.closed = true
		return
	}
	wantList := overlayNeighbors(m.nodes, m.self, m.cfg.degree())
	want := make(map[transport.NodeID]bool)
	for _, peer := range wantList {
		want[peer] = true
	}
	for _, peer := range append([]transport.NodeID(nil), m.order...) {
		if !want[peer] {
			m.dropLink(peer)
		}
	}
	// wantList is sorted: link creation (and thus barrier traffic) is
	// deterministic, keeping runs bit-identical under a seed.
	for _, peer := range wantList {
		if _, ok := m.links[peer]; !ok {
			m.addLink(peer, true)
		}
	}
}
