package scalecast

import (
	"fmt"
	"time"

	"catocs/internal/multicast"
	"catocs/internal/obs"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// Wire format. The headline property: FloodMsg control metadata is
// (origin, seq, sentAt, hops) — constant bytes regardless of group
// size, where CBCAST's DataMsg carries 8·N bytes of vector clock.

// FloodMsg is one broadcast as it floods the overlay.
type FloodMsg struct {
	Group  string
	Origin transport.NodeID
	Seq    uint64 // per-origin sequence, 1-based
	SentAt time.Duration
	// Hops counts relays; 0 means the origin's own transmission.
	Hops        int
	Payload     any
	PayloadSize int
}

// ID returns the message identity in the shared MsgID currency: the
// origin's NodeID as the sender. (Scalecast origins are transport
// addresses, not view ranks — metadata must not depend on the view.)
func (m *FloodMsg) ID() multicast.MsgID {
	return multicast.MsgID{Sender: vclock.ProcessID(m.Origin), Seq: m.Seq}
}

// TraceRef implements obs.Referable: the identity the causal trace
// recorder files the message's lifecycle under.
func (m *FloodMsg) TraceRef() obs.MsgRef {
	return obs.MsgRef{Sender: int64(m.Origin), Seq: m.Seq}
}

// ApproxSize implements transport.Sizer: a constant header plus the
// payload.
func (m *FloodMsg) ApproxSize() int { return 28 + m.PayloadSize }

// ControlSize implements transport.ControlSizer: the constant header.
func (m *FloodMsg) ControlSize() int { return 28 }

// LinkPacket carries a FloodMsg over one overlay link, stamped with
// the link's session and FIFO sequence number.
type LinkPacket struct {
	Group   string
	Session uint64
	Seq     uint64 // per-link FIFO sequence, 1-based within the session
	Msg     *FloodMsg
}

// TraceRef implements obs.Referable: a link packet arrives on the wire
// as the flood message it carries.
func (p *LinkPacket) TraceRef() obs.MsgRef { return p.Msg.TraceRef() }

// ApproxSize implements transport.Sizer.
func (p *LinkPacket) ApproxSize() int { return 24 + p.Msg.ApproxSize() }

// ControlSize implements transport.ControlSizer.
func (p *LinkPacket) ControlSize() int { return 24 + p.Msg.ControlSize() }

// Forwarded implements transport.ForwardMarker: relayed copies count
// against the relaying node's forwarding census.
func (p *LinkPacket) Forwarded() bool { return p.Msg.Hops > 0 }

// LinkAck acknowledges contiguous link-sequence receipt so the peer
// can prune its retransmission log — the drain half of the hybrid
// buffer.
type LinkAck struct {
	Group   string
	Session uint64
	Cum     uint64
}

// ApproxSize implements transport.Sizer.
func (p *LinkAck) ApproxSize() int { return 24 }

// LinkNack requests retransmission of link sequences [From, To] of a
// session.
type LinkNack struct {
	Group    string
	Session  uint64
	From, To uint64
}

// ApproxSize implements transport.Sizer.
func (p *LinkNack) ApproxSize() int { return 32 }

// LinkHeartbeat advertises the top link sequence sent on a session, so
// a receiver discovers a lost tail with no successor to betray it —
// the same problem the CBCAST stack solves with its ack-derived
// "known" frontier.
type LinkHeartbeat struct {
	Group   string
	Session uint64
	Top     uint64
}

// ApproxSize implements transport.Sizer.
func (p *LinkHeartbeat) ApproxSize() int { return 24 }

// link is one overlay adjacency: an independent reliable-FIFO channel
// in each direction.
type link struct {
	peer transport.NodeID

	// Out direction: my packets toward peer.
	outSession uint64
	outSeq     uint64
	outLog     map[uint64]*LinkPacket // sent, not yet cumulatively acked
	outAcked   uint64
	// barrierNeeded marks a new link whose activation handshake the
	// peer has not yet acknowledged; re-announced each heartbeat.
	barrierNeeded bool
	bornFresh     bool
	// outCut snapshots this member's delivered map at link creation:
	// the causal cut below which the link's out-stream is incomplete
	// (sent in LinkBarrier, dropped once the peer acknowledges).
	outCut map[transport.NodeID]uint64

	// In direction: peer's packets toward me.
	inSession uint64
	inNext    uint64 // next expected link seq (contiguous prefix + 1)
	inHold    map[uint64]*LinkPacket
	inTop     uint64 // highest seq known sent (packets or heartbeats)
	lastAcked uint64
	// pendingIn buffers inbound flood traffic until the causal barrier
	// activates the link (buffer.go).
	pendingIn bool
	buffered  []*FloodMsg // in link-FIFO order, awaiting activation
}

// sendOnLink transmits a flood message on one link, logging it for
// retransmission until acked.
func (m *Member) sendOnLink(l *link, fm *FloodMsg) {
	if m.closed {
		return
	}
	l.outSeq++
	pkt := &LinkPacket{Group: m.cfg.Group, Session: l.outSession, Seq: l.outSeq, Msg: fm}
	l.outLog[l.outSeq] = pkt
	m.net.Send(m.self, l.peer, pkt)
	m.armHeartbeat()
}

// onLinkPacket runs the receive side of the FIFO channel: adopt newer
// sessions, hold out-of-order packets, and surface the contiguous
// prefix to the flood layer (or the reconfiguration buffer).
func (m *Member) onLinkPacket(from transport.NodeID, pkt *LinkPacket) {
	l := m.links[from]
	if l == nil {
		// Not (or no longer) a neighbour. If the peer still considers
		// us one it will retransmit after our own re-wire creates the
		// link; dropping here is safe.
		return
	}
	if pkt.Session < l.inSession {
		return // stale session from a previous incarnation of the link
	}
	if pkt.Session > l.inSession {
		m.adoptSession(l, pkt.Session)
	}
	if pkt.Seq < l.inNext {
		m.Duplicates.Inc()
		return
	}
	if _, dup := l.inHold[pkt.Seq]; dup {
		m.Duplicates.Inc()
		return
	}
	l.inHold[pkt.Seq] = pkt
	if pkt.Seq > l.inTop {
		l.inTop = pkt.Seq
	}
	m.drainLink(l)
	if pkt.Seq >= l.inNext { // still gapped below this packet
		if m.trace != nil && !l.pendingIn {
			m.trace.Holdback(m.net.Now(), int(m.self), pkt.TraceRef(), "link fifo gap")
		}
		m.armNack()
	}
	m.updateGauge()
}

// adoptSession resets the in-direction to a newer session.
func (l *link) reset(session uint64) {
	l.inSession = session
	l.inNext = 1
	l.inHold = make(map[uint64]*LinkPacket)
	l.inTop = 0
	l.lastAcked = 0
}

func (m *Member) adoptSession(l *link, session uint64) { l.reset(session) }

// drainLink surfaces the contiguous received prefix in FIFO order.
func (m *Member) drainLink(l *link) {
	progressed := false
	for {
		pkt, ok := l.inHold[l.inNext]
		if !ok {
			break
		}
		delete(l.inHold, l.inNext)
		l.inNext++
		progressed = true
		if l.pendingIn {
			// Reconfiguration buffering: the link is not yet causally
			// safe; park the message in arrival (FIFO) order.
			l.buffered = append(l.buffered, pkt.Msg)
			if m.trace != nil {
				m.trace.Holdback(m.net.Now(), int(m.self), pkt.Msg.TraceRef(), "link awaiting causal barrier")
			}
		} else {
			m.acceptFlood(pkt.Msg, l.peer)
		}
	}
	if progressed {
		m.armAck()
	}
}

// onLinkAck prunes the retransmission log.
func (m *Member) onLinkAck(from transport.NodeID, ack *LinkAck) {
	l := m.links[from]
	if l == nil || ack.Session != l.outSession {
		return
	}
	for s := l.outAcked + 1; s <= ack.Cum; s++ {
		delete(l.outLog, s)
	}
	if ack.Cum > l.outAcked {
		l.outAcked = ack.Cum
	}
	// Pruned logs may have widened the ingress admission window.
	m.drainBlockedLocked()
}

// onLinkNack retransmits the requested range from the send log.
func (m *Member) onLinkNack(from transport.NodeID, nack *LinkNack) {
	l := m.links[from]
	if l == nil || nack.Session != l.outSession {
		return
	}
	for s := nack.From; s <= nack.To && s <= l.outSeq; s++ {
		if pkt, ok := l.outLog[s]; ok {
			m.CtrlMsgs.Inc()
			m.net.Send(m.self, l.peer, pkt)
		}
	}
}

// onLinkHeartbeat learns the peer's top sequence, arming gap recovery
// for lost tails.
func (m *Member) onLinkHeartbeat(from transport.NodeID, hb *LinkHeartbeat) {
	l := m.links[from]
	if l == nil || hb.Session < l.inSession {
		return
	}
	if hb.Session > l.inSession {
		m.adoptSession(l, hb.Session)
	}
	if hb.Top > l.inTop {
		l.inTop = hb.Top
	}
	if l.inTop >= l.inNext {
		m.armNack()
		return
	}
	if hb.Top > 0 {
		// Everything advertised is already received, yet the peer still
		// holds retransmission state: our ack was lost. Re-ack so its
		// log drains and the heartbeats stop.
		cum := l.inNext - 1
		l.lastAcked = cum
		m.sendCtrl(from, &LinkAck{Group: m.cfg.Group, Session: l.inSession, Cum: cum})
	}
}

// armAck schedules a delivery-progress acknowledgement.
func (m *Member) armAck() {
	if m.ackArmed || m.closed {
		return
	}
	m.ackArmed = true
	m.net.After(m.cfg.ackInterval(), func() {
		m.locked(m.onAckTimer)
	})
}

func (m *Member) onAckTimer() {
	m.ackArmed = false
	if m.closed {
		return
	}
	for _, peer := range m.order {
		l := m.links[peer]
		if cum := l.inNext - 1; cum > l.lastAcked {
			l.lastAcked = cum
			m.sendCtrl(peer, &LinkAck{Group: m.cfg.Group, Session: l.inSession, Cum: cum})
		}
	}
}

// armNack schedules gap-driven retransmission requests.
func (m *Member) armNack() {
	if m.nackArmed || m.closed {
		return
	}
	m.nackArmed = true
	m.net.After(m.cfg.nackDelay(), func() {
		m.locked(m.onNackTimer)
	})
}

func (m *Member) onNackTimer() {
	m.nackArmed = false
	if m.closed {
		return
	}
	rearm := false
	for _, peer := range m.order {
		l := m.links[peer]
		if l.inTop < l.inNext && len(l.inHold) == 0 {
			continue
		}
		top := l.inTop
		for s := range l.inHold {
			if s > top {
				top = s
			}
		}
		if top < l.inNext {
			continue
		}
		rearm = true
		m.sendCtrl(peer, &LinkNack{Group: m.cfg.Group, Session: l.inSession, From: l.inNext, To: top})
	}
	if rearm {
		m.armNack()
	}
}

// armHeartbeat schedules top-sequence advertisements while any link
// has unacknowledged traffic or an unacknowledged barrier.
func (m *Member) armHeartbeat() {
	if m.hbArmed || m.closed {
		return
	}
	m.hbArmed = true
	m.net.After(m.cfg.heartbeat(), func() {
		m.locked(m.onHeartbeatTimer)
	})
}

func (m *Member) onHeartbeatTimer() {
	m.hbArmed = false
	if m.closed {
		return
	}
	rearm := false
	for _, peer := range m.order {
		l := m.links[peer]
		if len(l.outLog) > 0 {
			rearm = true
			m.sendCtrl(peer, &LinkHeartbeat{Group: m.cfg.Group, Session: l.outSession, Top: l.outSeq})
		}
		if l.barrierNeeded {
			rearm = true
			m.sendBarriers(l)
		}
	}
	if rearm {
		m.armHeartbeat()
	}
}

// String renders a link for debugging.
func (l *link) String() string {
	return fmt.Sprintf("link{peer=%d out=%d/%d acked=%d in=%d hold=%d pending=%v}",
		l.peer, l.outSeq, l.outSession, l.outAcked, l.inNext-1, len(l.inHold), l.pendingIn)
}
