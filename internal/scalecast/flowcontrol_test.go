package scalecast

import (
	"fmt"
	"testing"
	"time"

	"catocs/internal/flowcontrol"
	"catocs/internal/transport"
)

// TestScalecastBlockPolicyBoundsRetransBuffer checks the overlay
// ingress window: with a byte/message budget and Block overflow, an
// origin's retransmission log (own casts plus the relay copies it must
// hold for its overlay children) never exceeds the budget, parked casts
// drain as link-level acks prune the log, and nothing is lost.
func TestScalecastBlockPolicyBoundsRetransBuffer(t *testing.T) {
	const (
		n     = 8
		casts = 40
	)
	g := newTestGroup(t, n, 7,
		transport.LinkConfig{BaseDelay: time.Millisecond, Jitter: time.Millisecond},
		Config{
			Group:    "fc",
			Budget:   flowcontrol.Budget{MaxMsgs: 16},
			Overflow: flowcontrol.Block,
		})
	origin := g.members[0]
	high := 0
	for i := 0; i < casts; i++ {
		i := i
		g.k.At(time.Duration(i)*time.Millisecond, func() {
			origin.Multicast(fmt.Sprintf("m%d", i), 64)
			if occ := origin.RetransCount(); occ > high {
				high = occ
			}
		})
	}
	g.k.RunUntil(time.Minute)

	if high > 16 {
		t.Fatalf("retrans log reached %d entries, budget 16", high)
	}
	if origin.BlockedCount() != 0 {
		t.Fatalf("%d casts still parked after quiescence", origin.BlockedCount())
	}
	if origin.AdmissionStall.Count() == 0 {
		t.Fatal("window never parked a cast; budget too loose to test anything")
	}
	g.assertAllDelivered(t, casts)
	g.assertPerOriginFIFO(t)
}

// TestScalecastShedPolicyCountsDrops checks Shed: over-budget casts
// are dropped at the ingress, counted, and everything admitted still
// reaches every member exactly once.
func TestScalecastShedPolicyCountsDrops(t *testing.T) {
	const (
		n     = 8
		casts = 40
	)
	g := newTestGroup(t, n, 7,
		transport.LinkConfig{BaseDelay: time.Millisecond, Jitter: time.Millisecond},
		Config{
			Group:    "fc",
			Budget:   flowcontrol.Budget{MaxMsgs: 16},
			Overflow: flowcontrol.Shed,
		})
	origin := g.members[0]
	for i := 0; i < casts; i++ {
		i := i
		g.k.At(time.Duration(i)*time.Millisecond, func() {
			origin.Multicast(fmt.Sprintf("m%d", i), 64)
		})
	}
	g.k.RunUntil(time.Minute)

	shed := int(origin.ShedCount.Value())
	if shed == 0 {
		t.Fatal("nothing shed; budget too loose to test anything")
	}
	if shed >= casts {
		t.Fatalf("all %d casts shed; window never admitted anything", casts)
	}
	g.assertAllDelivered(t, casts-shed)
	g.assertPerOriginFIFO(t)
}
