package chaos

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"catocs/internal/obs"
	"catocs/internal/sim"
	"catocs/internal/transport"
)

// --- interposer ---

func TestInterposerDropAndDup(t *testing.T) {
	k := sim.NewKernel(1)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: time.Millisecond})
	ip := NewInterposer(net, 7)
	var got int
	net.Register(1, func(transport.NodeID, any) { got++ })

	ip.SetLink(0, 1, LinkFault{DropProb: 1})
	for i := 0; i < 10; i++ {
		ip.Send(0, 1, "x")
	}
	k.Run()
	if got != 0 {
		t.Fatalf("drop=1 link delivered %d messages", got)
	}
	if s := ip.Stats(); s.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.Dropped)
	}

	ip.SetLink(0, 1, LinkFault{DupProb: 1})
	for i := 0; i < 10; i++ {
		ip.Send(0, 1, "x")
	}
	k.Run()
	if got != 20 {
		t.Fatalf("dup=1 link delivered %d messages, want 20", got)
	}

	ip.ClearLink(0, 1)
	got = 0
	ip.Send(0, 1, "x")
	k.Run()
	if got != 1 {
		t.Fatalf("cleared link delivered %d, want 1", got)
	}
}

func TestInterposerDelayReorders(t *testing.T) {
	k := sim.NewKernel(1)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: time.Millisecond})
	ip := NewInterposer(net, 7)
	var order []string
	net.Register(1, func(_ transport.NodeID, p any) { order = append(order, p.(string)) })

	ip.SetLink(0, 1, LinkFault{DelayProb: 1, Delay: 10 * time.Millisecond})
	ip.Send(0, 1, "slow")
	ip.SetLink(0, 1, LinkFault{})
	ip.Send(0, 1, "fast")
	k.Run()
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("delay did not reorder: %v", order)
	}
}

func TestInterposerForwardsFaultControls(t *testing.T) {
	k := sim.NewKernel(1)
	net := transport.NewSimNet(k, transport.LinkConfig{})
	ip := NewInterposer(net, 1)
	ip.Crash(3)
	if !ip.Crashed(3) || !net.Crashed(3) {
		t.Fatal("crash not forwarded")
	}
	ip.Recover(3)
	if ip.Crashed(3) {
		t.Fatal("recover not forwarded")
	}
	ip.Partition([]transport.NodeID{0, 1}, []transport.NodeID{2, 3})
	var got int
	net.Register(2, func(transport.NodeID, any) { got++ })
	ip.Send(0, 2, "x")
	k.Run()
	if got != 0 {
		t.Fatal("partition not forwarded")
	}
	ip.Heal()
	ip.Send(0, 2, "x")
	k.Run()
	if got != 1 {
		t.Fatal("heal not forwarded")
	}
}

// --- scripts ---

func TestScriptRoundTrip(t *testing.T) {
	text := "@12ms crash 3; @30ms recover 3; @40ms part 0,1,2|3,4; @90ms heal; " +
		"@10ms link 2>4 drop=0.30,dup=0.10,delay=0.50x20ms; @50ms clear 2>4"
	s, err := ParseScript(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 6 {
		t.Fatalf("parsed %d ops", len(s.Ops))
	}
	again, err := ParseScript(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if s.String() != again.String() {
		t.Fatalf("round-trip changed script:\n  %s\n  %s", s, again)
	}
	if s.End() != 90*time.Millisecond {
		t.Fatalf("End = %s", s.End())
	}
}

func TestScriptParseErrors(t *testing.T) {
	for _, bad := range []string{
		"crash 3",            // missing @time
		"@10ms crash",        // missing node
		"@10ms explode 3",    // unknown verb
		"@10ms link 2>4",     // missing fault
		"@10ms link 24 x",    // bad pair
		"@10ms link 2>4 zap", // bad fault term
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted", bad)
		}
	}
}

func TestGenDeterministicAndPaired(t *testing.T) {
	cfg := GenConfig{
		Nodes: 6, Horizon: 150 * time.Millisecond, MaxOutage: 100 * time.Millisecond,
		Crashes: 2, Partitions: 1, FlakyLinks: 2,
		Flaky: LinkFault{DropProb: 0.3, DupProb: 0.2, DelayProb: 0.3, Delay: 20 * time.Millisecond},
	}
	a := Gen(rand.New(rand.NewSource(42)), cfg)
	b := Gen(rand.New(rand.NewSource(42)), cfg)
	if a.String() != b.String() {
		t.Fatalf("Gen not deterministic:\n  %s\n  %s", a, b)
	}
	if len(a.Ops) != 2*(cfg.Crashes+cfg.Partitions+cfg.FlakyLinks) {
		t.Fatalf("ops = %d, want every fault paired with its repair", len(a.Ops))
	}
	counts := map[OpKind]int{}
	for _, op := range a.Ops {
		counts[op.Kind]++
	}
	if counts[OpCrash] != counts[OpRecover] || counts[OpPartition] != counts[OpHeal] ||
		counts[OpLink] != counts[OpClearLink] {
		t.Fatalf("unpaired faults: %v", counts)
	}
}

// --- oracles on synthetic traces ---

func ref(sender int, seq uint64) obs.MsgRef {
	return obs.MsgRef{Sender: int64(sender), Seq: seq, Label: "m"}
}

func TestCausalOrderOracleCatchesInversion(t *testing.T) {
	// Node 0 sends m1; node 1 delivers m1 then sends m2 (so m1 → m2);
	// node 2 delivers m2 before m1: violation.
	m1, m2 := ref(0, 1), ref(1, 1)
	events := []obs.Event{
		{T: 0, Node: 0, Kind: obs.KSend, Msg: m1},
		{T: 1, Node: 1, Kind: obs.KDeliver, Msg: m1},
		{T: 2, Node: 1, Kind: obs.KSend, Msg: m2},
		{T: 3, Node: 2, Kind: obs.KDeliver, Msg: m2},
		{T: 4, Node: 2, Kind: obs.KDeliver, Msg: m1},
	}
	if v := CheckCausalOrder(events); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the inversion at node 2", v)
	}
	// Swap node 2's deliveries into causal order: clean.
	events[3], events[4] = obs.Event{T: 3, Node: 2, Kind: obs.KDeliver, Msg: m1},
		obs.Event{T: 4, Node: 2, Kind: obs.KDeliver, Msg: m2}
	if v := CheckCausalOrder(events); len(v) != 0 {
		t.Fatalf("clean trace flagged: %v", v)
	}
}

func TestCausalOrderOracleIgnoresConcurrent(t *testing.T) {
	// Two concurrent sends delivered in opposite orders at two nodes:
	// fine causally (this is what total order adds).
	a, b := ref(0, 1), ref(1, 1)
	events := []obs.Event{
		{T: 0, Node: 0, Kind: obs.KSend, Msg: a},
		{T: 0, Node: 1, Kind: obs.KSend, Msg: b},
		{T: 1, Node: 2, Kind: obs.KDeliver, Msg: a},
		{T: 2, Node: 2, Kind: obs.KDeliver, Msg: b},
		{T: 1, Node: 3, Kind: obs.KDeliver, Msg: b},
		{T: 2, Node: 3, Kind: obs.KDeliver, Msg: a},
	}
	if v := CheckCausalOrder(events); len(v) != 0 {
		t.Fatalf("concurrent messages flagged: %v", v)
	}
	if v := CheckTotalOrder(DeliveryOrders(events)); len(v) != 1 {
		t.Fatalf("total-order oracle missed the disagreement: %v", v)
	}
}

func TestSameSetAndLivenessOracles(t *testing.T) {
	m := ref(0, 1)
	events := []obs.Event{
		{T: 0, Node: 0, Kind: obs.KSend, Msg: m},
		{T: 1, Node: 0, Kind: obs.KDeliver, Msg: m},
		{T: 1, Node: 1, Kind: obs.KDeliver, Msg: m},
		// node 2 never delivers m
	}
	nodes := []int{0, 1, 2}
	if v := CheckSameSet(DeliveryOrders(events), nodes); len(v) != 1 {
		t.Fatalf("same-set: %v", v)
	}
	if v := CheckLiveness(events, nodes, nil); len(v) != 1 {
		t.Fatalf("liveness: %v", v)
	}
	events = append(events, obs.Event{T: 2, Node: 2, Kind: obs.KDeliver, Msg: m})
	if v := CheckLiveness(events, nodes, nil); len(v) != 0 {
		t.Fatalf("clean liveness flagged: %v", v)
	}
}

func TestLivenessExemptsAllOrNothingLossAtCrashedSender(t *testing.T) {
	// Sender 0 crashed during the run and its message was delivered
	// nowhere: a legal all-or-nothing loss. Delivered SOMEWHERE, the
	// exemption ends — agreement requires it everywhere.
	m := ref(0, 1)
	events := []obs.Event{{T: 0, Node: 0, Kind: obs.KSend, Msg: m}}
	nodes := []int{0, 1}
	if v := CheckLiveness(events, nodes, []int{0}); len(v) != 0 {
		t.Fatalf("vanished message from crashed sender flagged: %v", v)
	}
	if v := CheckLiveness(events, nodes, nil); len(v) != 2 {
		t.Fatalf("healthy sender's vanished message not flagged: %v", v)
	}
	events = append(events, obs.Event{T: 1, Node: 1, Kind: obs.KDeliver, Msg: m})
	if v := CheckLiveness(events, nodes, []int{0}); len(v) != 1 {
		t.Fatalf("partial delivery from crashed sender must still violate agreement: %v", v)
	}
}

func TestStabilityOracleCatchesPrematureStabilize(t *testing.T) {
	m := ref(0, 1)
	events := []obs.Event{
		{T: 0, Node: 0, Kind: obs.KSend, Msg: m},
		{T: 1, Node: 0, Kind: obs.KDeliver, Msg: m},
		{T: 2, Node: 0, Kind: obs.KStabilize, Msg: m}, // node 1 hasn't delivered
		{T: 3, Node: 1, Kind: obs.KDeliver, Msg: m},
	}
	if v := CheckStabilitySafety(events, []int{0, 1}); len(v) != 1 {
		t.Fatalf("premature stabilize not caught: %v", v)
	}
	// Stabilize after both deliveries: clean.
	events[2], events[3] = events[3], obs.Event{T: 3, Node: 0, Kind: obs.KStabilize, Msg: m}
	if v := CheckStabilitySafety(events, []int{0, 1}); len(v) != 0 {
		t.Fatalf("clean stabilize flagged: %v", v)
	}
}

// --- episodes ---

func TestEpisodeDeterministicDigest(t *testing.T) {
	script, err := ParseScript("@40ms part 0,1|2,3; @140ms heal; @60ms crash 3; @180ms recover 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range Substrates {
		cfg := Config{Substrate: sub, N: 4, MsgsPer: 15, Seed: 11, Script: script, Faults: DefaultFaults}
		a := Run(cfg)
		b := Run(cfg)
		if a.Digest != b.Digest {
			t.Fatalf("%s: digests differ across identical runs: %016x vs %016x", sub, a.Digest, b.Digest)
		}
		if a.Sent == 0 || a.Delivered == 0 {
			t.Fatalf("%s: episode moved no traffic: %+v", sub, a)
		}
		if len(a.Violations) != 0 {
			t.Fatalf("%s: violations under repaired faults: %v", sub, a.Violations)
		}
	}
}

func TestEpisodePartitionShowsUnavailability(t *testing.T) {
	script, err := ParseScript("@30ms part 0,1,2|3; @230ms heal")
	if err != nil {
		t.Fatal(err)
	}
	// Senders 0–2 only: node 3's own local deliveries would otherwise
	// mask its receive silence.
	res := Run(Config{Substrate: "cbcast", N: 4, Senders: 3, MsgsPer: 30, Seed: 5, Script: script})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Node 3 is cut off for 200ms; its delivery silence must show it.
	if res.UnavailMax < 160*time.Millisecond {
		t.Fatalf("UnavailMax = %s, want ≈ the 200ms outage", res.UnavailMax)
	}
}

func TestShrinkMinimisesFailingScript(t *testing.T) {
	// A crash that never recovers deterministically violates liveness.
	// Bury it in padding ops; shrink must strip the padding.
	script, err := ParseScript(
		"@5ms link 0>1 drop=0.20; @45ms clear 0>1; @10ms crash 3; @20ms part 0,1|2,3; @60ms heal")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Substrate: "cbcast", N: 4, MsgsPer: 10, Seed: 3, Script: script,
		Settle: 500 * time.Millisecond}
	res := Run(cfg)
	if len(res.Violations) == 0 {
		t.Fatal("unrepaired crash did not violate liveness")
	}
	min, minRes := Shrink(cfg)
	if len(minRes.Violations) == 0 {
		t.Fatal("shrunk config no longer fails")
	}
	if len(min.Script.Ops) >= len(cfg.Script.Ops) {
		t.Fatalf("shrink removed nothing: %d ops", len(min.Script.Ops))
	}
	if !strings.Contains(min.Script.String(), "crash 3") {
		t.Fatalf("shrink dropped the culprit: %s", min.Script)
	}
}

func TestRunEpisodesAggregatesAndReproduces(t *testing.T) {
	rc := RunnerConfig{Substrate: "scalecast", N: 5, MsgsPer: 12, Episodes: 2, Seed: 9}
	a := RunEpisodes(rc)
	b := RunEpisodes(rc)
	if a.Digest != b.Digest {
		t.Fatalf("batch digest not deterministic: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.Sent == 0 || a.Delivered == 0 {
		t.Fatalf("batch moved no traffic: %+v", a)
	}
	if len(a.Failures) != 0 {
		t.Fatalf("default mix produced violations: %v (repro: %s)",
			a.Failures[0].Result.Violations, a.Failures[0].Repro)
	}
	if a.ViolationSummary() != "none" {
		t.Fatalf("summary: %s", a.ViolationSummary())
	}
}

func TestWALDurabilityOracle(t *testing.T) {
	if v := checkWALDurability(123); len(v) != 0 {
		t.Fatalf("durability trial failed: %v", v)
	}
}

func TestAcyclicOrderOracleCatchesCrossGroupCycle(t *testing.T) {
	// Three messages, three nodes, each node seeing a different pair in
	// a consistent order — yet the pairs compose into a 3-cycle
	// m1 < m2 < m3 < m1. Pairwise total order cannot catch this: no
	// two nodes share two messages.
	m1, m2, m3 := ref(0, 1), ref(1, 1), ref(2, 1)
	orders := map[int][]obs.MsgRef{
		0: {m1, m2},
		1: {m2, m3},
		2: {m3, m1},
	}
	if v := CheckTotalOrder(orders); len(v) != 0 {
		t.Fatalf("pairwise oracle unexpectedly fired: %v", v)
	}
	v := CheckAcyclicOrder(orders)
	if len(v) != 1 || v[0].Oracle != "acyclic-order" {
		t.Fatalf("acyclicity violations = %v, want exactly one cycle", v)
	}

	// Flip node 2 into the global order: clean.
	orders[2] = []obs.MsgRef{m1, m3}
	if v := CheckAcyclicOrder(orders); len(v) != 0 {
		t.Fatalf("clean orders flagged: %v", v)
	}
}

func TestAcyclicOrderSubsumesPairwiseDisagreement(t *testing.T) {
	a, b := ref(0, 1), ref(1, 1)
	orders := map[int][]obs.MsgRef{
		2: {a, b},
		3: {b, a},
	}
	if v := CheckAcyclicOrder(orders); len(v) != 1 {
		t.Fatalf("2-cycle not caught: %v", v)
	}
}

func TestDestLivenessOracle(t *testing.T) {
	m := ref(0, 1)
	events := []obs.Event{
		{T: 0, Node: 0, Kind: obs.KSend, Msg: m},
		{T: 1, Node: 0, Kind: obs.KDeliver, Msg: m},
		{T: 1, Node: 1, Kind: obs.KDeliver, Msg: m},
		// destination node 2 never delivers; node 3 is not a destination
		{T: 2, Node: 3, Kind: obs.KDeliver, Msg: m},
	}
	dests := func(sender int64, seq uint64) []int {
		if sender == 0 && seq == 1 {
			return []int{0, 1, 2}
		}
		return nil
	}
	v := CheckDestLiveness(events, dests, nil)
	if len(v) != 2 {
		t.Fatalf("violations = %v, want missing-dest and non-dest delivery", v)
	}
	// A message with unrecorded destinations is skipped entirely.
	events = append(events, obs.Event{T: 3, Node: 5, Kind: obs.KSend, Msg: ref(5, 9)})
	if got := CheckDestLiveness(events, dests, nil); len(got) != 2 {
		t.Fatalf("unrecorded message changed the verdict: %v", got)
	}
	// Crashed sender with zero deliveries anywhere: all-or-nothing loss.
	lost := []obs.Event{{T: 0, Node: 4, Kind: obs.KSend, Msg: ref(4, 1)}}
	allDests := func(int64, uint64) []int { return []int{0, 1} }
	if got := CheckDestLiveness(lost, allDests, []int{4}); len(got) != 0 {
		t.Fatalf("crashed-sender loss flagged: %v", got)
	}
	if got := CheckDestLiveness(lost, allDests, nil); len(got) != 2 {
		t.Fatalf("live-sender loss not flagged: %v", got)
	}
}

func TestMgcastEpisodesCleanAndDeterministic(t *testing.T) {
	rc := RunnerConfig{
		Substrate: "mgcast",
		N:         8,
		MsgsPer:   10,
		Episodes:  4,
		Seed:      7,
	}
	sum := RunEpisodes(rc)
	if len(sum.Failures) != 0 {
		t.Fatalf("mgcast episodes violated oracles: %v (repro: %s)",
			sum.Failures[0].Result.Violations, sum.Failures[0].Repro)
	}
	if sum.Delivered == 0 {
		t.Fatalf("no deliveries across %d episodes", rc.Episodes)
	}
	if again := RunEpisodes(rc); again.Digest != sum.Digest {
		t.Fatalf("digest %x != %x: mgcast episodes are not deterministic", again.Digest, sum.Digest)
	}
}
