// Package chaos is a deterministic fault-injection harness with
// ordering-invariant oracles for the broadcast substrates in this
// repository.
//
// The paper's sharpest claims are about behaviour under failure: §2.4
// argues failure notifications must be ordered with respect to message
// traffic, and §6 argues CATOCS cannot cope with partitions without
// state-level reconciliation. This package makes those claims
// executable. A fault Interposer wraps any transport.Network and
// injects per-link drops, duplicates, and reordering delays; a Script
// schedules crash/recover, partition/heal, and flaky-link windows on
// the wrapped network; oracles check the guarantees each substrate
// advertises (causal-order safety, total-order agreement, delivery-set
// agreement, stability safety, WAL durability) against the causal
// trace the run recorded; and a Runner executes N seeded episodes per
// substrate, shrinks any failing fault schedule to a minimal script,
// and prints the seed so every failure reproduces with one command.
//
// Everything is deterministic under a seed when run over SimNet: the
// interposer draws from its own seeded PRNG on the simulation's
// single-threaded dispatch, so two runs with the same seed produce
// bit-identical event streams (compared by digest). The same
// interposer also wraps LiveNet — which, as of this package, has full
// Crash/Partition parity with SimNet — for race-detection runs, where
// wall-clock timing is nondeterministic but the invariants must still
// hold.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"catocs/internal/transport"
)

// LinkFault is the message-level fault mix applied to a directed link.
// The zero value is a clean link.
type LinkFault struct {
	// DropProb is the probability a payload is silently discarded.
	DropProb float64
	// DupProb is the probability a payload is forwarded twice.
	DupProb float64
	// DelayProb is the probability a payload is held for Delay before
	// being forwarded — letting later sends on the link overtake it,
	// which is how the interposer manufactures reordering.
	DelayProb float64
	// Delay is the extra latency applied on a DelayProb hit.
	Delay time.Duration
}

// IsZero reports whether the fault injects nothing.
func (f LinkFault) IsZero() bool { return f == LinkFault{} }

// String renders the fault compactly, e.g. "drop=0.30,dup=0.10,delay=0.50x20ms".
func (f LinkFault) String() string {
	if f.IsZero() {
		return "clean"
	}
	var parts []string
	if f.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", f.DropProb))
	}
	if f.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.2f", f.DupProb))
	}
	if f.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%.2fx%s", f.DelayProb, f.Delay))
	}
	return strings.Join(parts, ",")
}

// Faultable is the control surface fault schedules drive: a network
// that can crash nodes and partition itself. SimNet implements it
// natively; LiveNet gained parity for this package; the Interposer
// forwards it.
type Faultable interface {
	transport.Network
	Crash(transport.NodeID)
	Recover(transport.NodeID)
	Crashed(transport.NodeID) bool
	Partition(...[]transport.NodeID)
	Heal()
}

// Slowable is the slow-consumer control surface: a network that can
// add inbound delivery lag at a node while leaving its outbound
// traffic timely — the §5 failure mode where a member stays "alive" to
// every detector yet pins the group's stability buffers. SimNet and
// LiveNet both implement it; the Interposer forwards it.
type Slowable interface {
	Slow(id transport.NodeID, lag time.Duration)
	Fast(id transport.NodeID)
}

// FaultStats counts the faults the interposer actually injected.
type FaultStats struct {
	Dropped    uint64 // payloads discarded
	Duplicated uint64 // extra copies forwarded
	Delayed    uint64 // payloads held for Delay (reordering opportunities)
}

// Interposer wraps a transport.Network and injects message-level
// faults on Send. It implements transport.Network, so protocol stacks
// build on it unmodified, and Faultable, forwarding node/partition
// faults to the underlying network when it supports them.
//
// All randomness comes from the interposer's own seeded PRNG. Over
// SimNet every Send happens on the kernel goroutine, so fault draws
// are deterministic; over LiveNet the mutex makes them safe, not
// reproducible (wall-clock interleaving already isn't).
type Interposer struct {
	net transport.Network

	mu    sync.Mutex
	rng   *rand.Rand
	def   LinkFault
	links map[[2]transport.NodeID]LinkFault
	stats FaultStats
}

// NewInterposer wraps net with a clean default fault mix.
func NewInterposer(net transport.Network, seed int64) *Interposer {
	return &Interposer{
		net:   net,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[[2]transport.NodeID]LinkFault),
	}
}

// SetDefault installs the fault mix applied to links without a
// per-link override.
func (ip *Interposer) SetDefault(f LinkFault) {
	ip.mu.Lock()
	ip.def = f
	ip.mu.Unlock()
}

// SetLink overrides the fault mix for the directed pair (from, to) —
// a flaky link.
func (ip *Interposer) SetLink(from, to transport.NodeID, f LinkFault) {
	ip.mu.Lock()
	ip.links[[2]transport.NodeID{from, to}] = f
	ip.mu.Unlock()
}

// ClearLink removes a per-link override, restoring the default mix.
func (ip *Interposer) ClearLink(from, to transport.NodeID) {
	ip.mu.Lock()
	delete(ip.links, [2]transport.NodeID{from, to})
	ip.mu.Unlock()
}

// Stats returns a snapshot of the injected-fault counters.
func (ip *Interposer) Stats() FaultStats {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return ip.stats
}

// Register implements transport.Network.
func (ip *Interposer) Register(id transport.NodeID, h transport.Handler) {
	ip.net.Register(id, h)
}

// Now implements transport.Network.
func (ip *Interposer) Now() time.Duration { return ip.net.Now() }

// After implements transport.Network.
func (ip *Interposer) After(d time.Duration, f func()) { ip.net.After(d, f) }

// Send implements transport.Network: roll the link's fault mix, then
// forward surviving copies to the underlying network.
func (ip *Interposer) Send(from, to transport.NodeID, payload any) {
	ip.mu.Lock()
	f, ok := ip.links[[2]transport.NodeID{from, to}]
	if !ok {
		f = ip.def
	}
	var drop, dup bool
	var delay time.Duration
	if f.DropProb > 0 && ip.rng.Float64() < f.DropProb {
		drop = true
		ip.stats.Dropped++
	} else {
		if f.DupProb > 0 && ip.rng.Float64() < f.DupProb {
			dup = true
			ip.stats.Duplicated++
		}
		if f.DelayProb > 0 && ip.rng.Float64() < f.DelayProb {
			delay = f.Delay
			ip.stats.Delayed++
		}
	}
	ip.mu.Unlock()
	if drop {
		return
	}
	if delay > 0 {
		ip.net.After(delay, func() { ip.net.Send(from, to, payload) })
	} else {
		ip.net.Send(from, to, payload)
	}
	if dup {
		ip.net.Send(from, to, payload)
	}
}

// Crash forwards to the underlying network when it supports crashes.
func (ip *Interposer) Crash(id transport.NodeID) {
	if f, ok := ip.net.(Faultable); ok {
		f.Crash(id)
	}
}

// Recover forwards to the underlying network.
func (ip *Interposer) Recover(id transport.NodeID) {
	if f, ok := ip.net.(Faultable); ok {
		f.Recover(id)
	}
}

// Crashed reports the underlying network's crash state (false when
// the network has no crash model).
func (ip *Interposer) Crashed(id transport.NodeID) bool {
	if f, ok := ip.net.(Faultable); ok {
		return f.Crashed(id)
	}
	return false
}

// Partition forwards to the underlying network.
func (ip *Interposer) Partition(islands ...[]transport.NodeID) {
	if f, ok := ip.net.(Faultable); ok {
		f.Partition(islands...)
	}
}

// Heal forwards to the underlying network.
func (ip *Interposer) Heal() {
	if f, ok := ip.net.(Faultable); ok {
		f.Heal()
	}
}

// Slow forwards to the underlying network when it models slow
// consumers.
func (ip *Interposer) Slow(id transport.NodeID, lag time.Duration) {
	if s, ok := ip.net.(Slowable); ok {
		s.Slow(id, lag)
	}
}

// Fast forwards to the underlying network.
func (ip *Interposer) Fast(id transport.NodeID) {
	if s, ok := ip.net.(Slowable); ok {
		s.Fast(id)
	}
}

// Compile-time checks: both stock networks satisfy the chaos control
// surface, and the interposer passes as either interface.
var (
	_ Faultable = (*transport.SimNet)(nil)
	_ Faultable = (*transport.LiveNet)(nil)
	_ Faultable = (*Interposer)(nil)
	_ Slowable  = (*transport.SimNet)(nil)
	_ Slowable  = (*transport.LiveNet)(nil)
	_ Slowable  = (*Interposer)(nil)
)
