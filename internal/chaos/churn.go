package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"catocs/internal/detect"
	"catocs/internal/group"
	"catocs/internal/multicast"
	"catocs/internal/obs"
	"catocs/internal/sim"
	"catocs/internal/state"
	"catocs/internal/transport"
	"catocs/internal/vclock"
	"catocs/internal/wal"
)

// Churn episodes run the full dynamic-membership stack — monitors,
// joiner state transfer, WAL crash-recovery rejoin, graceful leave —
// under a randomized schedule of join/leave/crash/recover ops, and
// check three reconfiguration oracles on top of the WAL durability
// trial:
//
//   - joiner-state: every member alive at the end holds a store whose
//     snapshot digest equals every other's — a joiner (or recovered
//     member) that entered through state transfer is
//     delivery-equivalent to the survivors.
//   - no-stale-epoch: no member ever applies a payload from a previous
//     life of its origin once a view listing the origin's newer
//     incarnation is installed — except the origin's own WAL replay,
//     which legitimately re-issues unstable old-life casts under its
//     new life (at-least-once; appliers dedup).
//   - rejoin-liveness: every recovery and join that was initiated (and
//     not superseded by a later crash or leave) completes, and all
//     live members agree on the final view.
//
// The classic trace oracles (causal order, same-set) do not run here:
// they key messages by (sender rank, seq), and sendSeq restarts at
// every view change, so refs collide across epochs. The churn oracles
// are application-level instead — payloads carry their own identity.
//
// The episode keeps nodes 0 and 1 as a stable core (GenChurn never
// crashes them): they are the donors of every view and the contacts
// every joiner and recoverer rotates through.

// ChurnConfig parameterises one churn episode on the cbcast/atomic
// membership stack.
type ChurnConfig struct {
	// N is the initial group size (≥3). Zero defaults to 8.
	N int
	// Senders is how many of the first N ranks originate traffic. Zero
	// defaults to min(N, 4). Senders 2.. are crashable, so recovery
	// replay gets exercised.
	Senders int
	// MsgsPer is messages per sender. Zero defaults to 30.
	MsgsPer int
	// Interval is the per-sender send period. Zero defaults to 5ms.
	Interval time.Duration
	// Settle is quiet time after the last send and op. Zero defaults to
	// 2s plus ten suspect timeouts, so the last reconfiguration
	// completes before the oracles run.
	Settle time.Duration
	// Seed drives the kernel and the WAL trial.
	Seed int64
	// Script is the churn schedule (crash/recover/join/leave ops; any
	// network ops present are ignored — churn episodes run a clean
	// network so reconfiguration itself is the only fault).
	Script Script
	// Heartbeat / Suspect configure the monitors (zero = the group
	// package defaults, 10ms/40ms). Scale them up with N: heartbeat
	// traffic is O(N²) per interval.
	Heartbeat time.Duration
	Suspect   time.Duration
	// AckInterval / NackDelay configure atomic-mode stability acks
	// (zero = the multicast defaults, 20ms/25ms). Scale them up with N
	// too: every cast burst triggers N² ack messages, each updating an
	// O(N) stability-matrix row — the §5 cost E24 measures at scale.
	AckInterval time.Duration
	NackDelay   time.Duration
}

func (cfg *ChurnConfig) fillDefaults() {
	if cfg.N == 0 {
		cfg.N = 8
	}
	if cfg.Senders == 0 {
		cfg.Senders = cfg.N
		if cfg.Senders > 4 {
			cfg.Senders = 4
		}
	}
	if cfg.MsgsPer == 0 {
		cfg.MsgsPer = 30
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	if cfg.Settle == 0 {
		suspect := cfg.Suspect
		if suspect == 0 {
			suspect = 40 * time.Millisecond
		}
		cfg.Settle = 2*time.Second + 10*suspect
	}
}

// ChurnResult is what one churn episode measured.
type ChurnResult struct {
	Seed   int64
	Script Script
	// Digest hashes the full event trace (determinism check).
	Digest uint64
	// Sent / Skipped: application casts issued / elided because the
	// sender was down at fire time.
	Sent    uint64
	Skipped uint64
	// Applied counts first-time payload applies across all members;
	// Dups counts duplicate applies absorbed by application-level IDs
	// (the at-least-once replay cost the paper's §4.4 assigns to the
	// application).
	Applied uint64
	Dups    uint64
	// Epochs is the final view's epoch at the stable core — how many
	// reconfigurations the episode drove.
	Epochs uint64
	// ViewInstalls sums per-member view installations; FlushMsgs sums
	// membership-protocol messages — FlushMsgs/Epochs is the metadata
	// cost per reconfiguration.
	ViewInstalls uint64
	FlushMsgs    uint64
	// TransferBytes / TransferChunks: donor-side state-transfer volume.
	TransferBytes  uint64
	TransferChunks uint64
	// UnavailMax / UnavailMean: longest delivery silence over the
	// initial members (E18's availability-window metric).
	UnavailMax  time.Duration
	UnavailMean time.Duration
	// Violations is empty iff every oracle passed.
	Violations []Violation
}

// MetadataPerEpoch is the membership-message cost of one
// reconfiguration.
func (r ChurnResult) MetadataPerEpoch() float64 {
	if r.Epochs == 0 {
		return 0
	}
	return float64(r.FlushMsgs) / float64(r.Epochs)
}

// churnNode is one process identity over its whole lifetime, crashes
// included.
type churnNode struct {
	id      transport.NodeID
	app     *state.Store
	dev     *wal.Device
	mlog    *wal.MemberLog
	member  *multicast.Member
	monitor *group.Monitor
	deliver multicast.DeliverFunc
	up      bool
	crashed bool   // down awaiting recover
	pending string // "recover" or "join" initiated but not completed
	inc     uint32 // current incarnation (payload stamps)
	seq     int    // payload counter, monotonic across lives
}

// RunChurn executes one churn episode and checks the churn oracles.
// The substrate is the atomic cbcast stack — the only one with a
// membership protocol; E24 contrasts it against scalecast's
// rewire-only reconfiguration.
func RunChurn(cfg ChurnConfig) ChurnResult {
	cfg.fillDefaults()
	if cfg.N < 3 {
		panic("chaos: RunChurn needs N ≥ 3")
	}
	k := sim.NewKernel(cfg.Seed)
	k.SetEventLimit(200_000_000)
	// Jitter makes the seed matter: with a fixed delay every episode
	// would replay the identical trace regardless of seed.
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 1 * time.Millisecond, Jitter: 1 * time.Millisecond})
	tracer := obs.NewTracer()
	net.Instrument(tracer, nil, "cbcast")
	mux := transport.NewMux(net)
	mcfg := multicast.Config{
		Group: "churn", Ordering: multicast.Causal, Atomic: true, Tracer: tracer,
		AckInterval: cfg.AckInterval, NackDelay: cfg.NackDelay,
	}
	gcfg := group.Config{HeartbeatInterval: cfg.Heartbeat, SuspectTimeout: cfg.Suspect}
	contacts := []transport.NodeID{0, 1}

	var violations []Violation
	var applied, dups uint64
	var monitors []*group.Monitor
	nodesByID := make(map[transport.NodeID]*churnNode)
	replayed := make(map[string]bool)

	newNode := func(id transport.NodeID) *churnNode {
		ns := &churnNode{id: id, app: state.NewStore(), dev: wal.NewDevice()}
		ns.deliver = func(d multicast.Delivered) {
			p, ok := d.Payload.([]byte)
			if !ok {
				return // fills may replay non-churn payloads; none exist here
			}
			key := string(p)
			if _, _, ok := ns.app.Get(key); ok {
				dups++
				return
			}
			var origin, life, n int
			if _, err := fmt.Sscanf(key, "o%d.i%d.n%d", &origin, &life, &n); err == nil && ns.member != nil {
				// no-stale-epoch: once this member's view lists the origin at
				// a newer incarnation, payloads from the old life may only
				// arrive via the origin's own replay.
				if incs := ns.member.ViewIncs(); incs != nil {
					for r, node := range ns.member.ViewNodes() {
						if node == transport.NodeID(origin) && incs[r] > uint32(life) && !replayed[key] {
							violations = append(violations, Violation{
								Oracle: "no-stale-epoch",
								Detail: fmt.Sprintf("node %d applied %q after installing inc %d for origin %d",
									ns.id, key, incs[r], origin),
							})
						}
					}
				}
			}
			ns.app.Put(key, uint64(1))
			applied++
		}
		nodesByID[id] = ns
		return ns
	}
	attachMonitor := func(ns *churnNode, m *multicast.Member) {
		mon := group.NewMonitor(mux, m, "churn", gcfg)
		mon.StateSource = func() []byte {
			data, err := ns.app.SnapshotBytes()
			if err != nil {
				panic(err) // churn stores hold only uint64 values
			}
			return data
		}
		mon.Start()
		ns.monitor = mon
		monitors = append(monitors, mon)
	}

	initial := make([]transport.NodeID, cfg.N)
	initialInts := make([]int, cfg.N)
	for i := range initial {
		initial[i] = transport.NodeID(i)
		initialInts[i] = i
		newNode(initial[i])
	}
	members := multicast.NewGroup(mux, initial, mcfg, func(rank vclock.ProcessID) multicast.DeliverFunc {
		return nodesByID[transport.NodeID(rank)].deliver
	})
	for i, m := range members {
		ns := nodesByID[initial[i]]
		ns.member = m
		ns.up = true
		mlog, _, err := wal.OpenMemberLog(ns.dev)
		if err != nil {
			panic(err)
		}
		ns.mlog = mlog
		attachMonitor(ns, m)
	}

	// Op drivers. Each tolerates a missing precondition by doing
	// nothing, so the shrinker can remove any op and leave its pair
	// behind as a no-op.
	for _, op := range cfg.Script.Ops {
		op := op
		k.At(op.At, func() {
			ns := nodesByID[op.Node]
			switch op.Kind {
			case OpCrash:
				if ns == nil || !ns.up {
					return
				}
				net.Crash(ns.id)
				ns.monitor.Stop()
				ns.member.Close()
				ns.up, ns.crashed, ns.pending = false, true, ""
			case OpRecover:
				if ns == nil || !ns.crashed || ns.pending != "" {
					return
				}
				net.Recover(ns.id)
				// Register the replay set before the rejoin can re-issue it:
				// these payloads are exempt from the no-stale-epoch oracle.
				if _, rec0, err := wal.OpenMemberLog(ns.dev); err == nil {
					for _, c := range rec0.Casts {
						replayed[string(c)] = true
					}
				}
				rec := &group.Recoverer{
					OnState: func(data []byte) {
						if err := ns.app.RestoreBytes(data); err != nil {
							violations = append(violations, Violation{
								Oracle: "joiner-state",
								Detail: fmt.Sprintf("node %d could not restore transferred state: %v", ns.id, err),
							})
						}
					},
					OnJoined: func(m *multicast.Member) {
						ns.member = m
						attachMonitor(ns, m)
					},
					OnRecovered: func(m *multicast.Member, epoch uint64, inc uint32, n int) {
						ns.up, ns.crashed, ns.pending, ns.inc = true, false, "", inc
					},
				}
				j, mlog, err := rec.Recover(mux, ns.id, contacts, "churn", mcfg, ns.deliver, ns.dev)
				if err != nil {
					violations = append(violations, Violation{
						Oracle: "rejoin-liveness",
						Detail: fmt.Sprintf("node %d recovery failed to open its WAL: %v", ns.id, err),
					})
					return
				}
				ns.mlog = mlog
				ns.pending = "recover"
				j.Start()
			case OpJoin:
				if ns != nil {
					return // identity already exists (alive, down, or pending)
				}
				ns = newNode(op.Node)
				ns.pending = "join"
				j := group.NewJoiner(mux, ns.id, contacts[0], "churn", mcfg, ns.deliver)
				j.Contacts = contacts
				j.OnState = func(data []byte) {
					if err := ns.app.RestoreBytes(data); err != nil {
						violations = append(violations, Violation{
							Oracle: "joiner-state",
							Detail: fmt.Sprintf("joiner %d could not restore transferred state: %v", ns.id, err),
						})
					}
				}
				j.OnJoined = func(m *multicast.Member) {
					ns.member = m
					attachMonitor(ns, m)
				}
				j.OnReady = func(*multicast.Member) {
					ns.up, ns.pending = true, ""
				}
				j.Start()
			case OpLeave:
				if ns == nil || !ns.up {
					return
				}
				ns.monitor.Leave()
				ns.up, ns.pending = false, ""
				delete(nodesByID, ns.id) // the identity is gone for good
			case OpPartition:
				net.Partition(op.Islands...)
			case OpHeal:
				net.Heal()
			case OpSlow:
				net.Slow(op.Node, op.Lag)
			case OpFast:
				net.Fast(op.Node)
			}
		})
	}

	var sent, skipped uint64
	for s := 0; s < cfg.Senders; s++ {
		ns := nodesByID[transport.NodeID(s)]
		for i := 0; i < cfg.MsgsPer; i++ {
			s, i := s, i
			k.At(time.Duration(i)*cfg.Interval+time.Duration(s)*100*time.Microsecond, func() {
				if !ns.up {
					skipped++ // fail-stop: a down process originates nothing
					return
				}
				payload := []byte(fmt.Sprintf("o%d.i%d.n%d", s, ns.inc, ns.seq))
				ns.seq++
				ns.mlog.LogCast(payload)
				ns.member.Multicast(payload, len(payload))
				sent++
			})
		}
	}

	horizon := time.Duration(cfg.MsgsPer) * cfg.Interval
	if end := cfg.Script.End(); end > horizon {
		horizon = end
	}
	k.RunUntil(horizon + cfg.Settle)

	// Final-state oracles (ids sorted so violation order is deterministic).
	allIDs := make([]transport.NodeID, 0, len(nodesByID))
	for id := range nodesByID {
		allIDs = append(allIDs, id)
	}
	sort.Slice(allIDs, func(a, b int) bool { return allIDs[a] < allIDs[b] })
	var liveIDs []transport.NodeID
	for _, id := range allIDs {
		ns := nodesByID[id]
		if ns.pending != "" {
			violations = append(violations, Violation{
				Oracle: "rejoin-liveness",
				Detail: fmt.Sprintf("node %d initiated a %s that never completed", id, ns.pending),
			})
		}
		if ns.up {
			liveIDs = append(liveIDs, id)
		}
	}
	if len(liveIDs) > 0 {
		ref := nodesByID[liveIDs[0]]
		refView := ref.member.ViewNodes()
		refDigest := storeDigest(ref.app)
		for _, id := range liveIDs[1:] {
			ns := nodesByID[id]
			if !sameView(refView, ns.member.ViewNodes()) {
				violations = append(violations, Violation{
					Oracle: "rejoin-liveness",
					Detail: fmt.Sprintf("node %d final view %v != node %d view %v",
						id, ns.member.ViewNodes(), ref.id, refView),
				})
			}
			if d := storeDigest(ns.app); d != refDigest {
				violations = append(violations, Violation{
					Oracle: "joiner-state",
					Detail: fmt.Sprintf("node %d state digest %x != node %d digest %x",
						id, d, ref.id, refDigest),
				})
			}
		}
	}
	violations = append(violations, checkWALDurability(cfg.Seed)...)

	events := tracer.Events()
	res := ChurnResult{
		Seed:       cfg.Seed,
		Script:     cfg.Script,
		Digest:     DigestEvents(events),
		Sent:       sent,
		Skipped:    skipped,
		Applied:    applied,
		Dups:       dups,
		Violations: violations,
	}
	if len(liveIDs) > 0 {
		res.Epochs = nodesByID[liveIDs[0]].member.Epoch()
	}
	for _, mon := range monitors {
		res.ViewInstalls += mon.Stats.ViewChanges.Value()
		res.FlushMsgs += mon.Stats.FlushMsgs.Value()
		res.TransferBytes += mon.Stats.StateBytes.Value()
		res.TransferChunks += mon.Stats.StateChunks.Value()
	}
	res.UnavailMax, res.UnavailMean = unavailability(events, initialInts)
	return res
}

func storeDigest(s *state.Store) uint64 {
	cut, err := detect.CaptureCut(0, s)
	if err != nil {
		panic(err)
	}
	return cut.Digest
}

func sameView(a, b []transport.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ShrinkChurn minimises a failing churn episode by greedily removing
// script ops while the episode still violates an oracle. Op drivers
// are no-op tolerant, so removing one half of a pair leaves the other
// harmless. Budgeted at ~100 re-runs.
func ShrinkChurn(cfg ChurnConfig) (ChurnConfig, ChurnResult) {
	res := RunChurn(cfg)
	if len(res.Violations) == 0 {
		return cfg, res
	}
	budget := 100
	for {
		removed := false
		for i := 0; i < len(cfg.Script.Ops) && budget > 0; i++ {
			trial := cfg
			trial.Script.Ops = append(append([]Op{}, cfg.Script.Ops[:i]...), cfg.Script.Ops[i+1:]...)
			budget--
			if r := RunChurn(trial); len(r.Violations) > 0 {
				cfg, res = trial, r
				removed = true
				i--
			}
		}
		if !removed || budget <= 0 {
			break
		}
	}
	return cfg, res
}

// ChurnRunnerConfig parameterises a batch of randomized churn
// episodes.
type ChurnRunnerConfig struct {
	N        int
	Senders  int
	MsgsPer  int
	Interval time.Duration
	Episodes int
	// Seed is the base seed; episode i runs at Seed + i*1000003.
	Seed int64
	// Gen bounds the random churn schedules. Zero-valued counts default
	// to 2 crash→recover pairs and 2 joins (1 staying).
	Gen GenChurnConfig
	// NoRecover strips the recover half of every crash pair: crashed
	// members stay down and the group only shrinks. The rejoin oracles
	// then have nothing to check for those nodes — this mode stresses
	// repeated exclusion instead of the recovery path.
	NoRecover bool
	// Shrink minimises failing schedules before reporting them.
	Shrink    bool
	Heartbeat time.Duration
	Suspect   time.Duration
}

// ChurnFailure is one failing episode with its minimised reproduction.
type ChurnFailure struct {
	Seed      int64
	Result    ChurnResult
	MinConfig ChurnConfig
	MinResult ChurnResult
	Repro     string
}

// ChurnSummary aggregates a batch of churn episodes.
type ChurnSummary struct {
	Episodes       int
	Digest         uint64
	Sent           uint64
	Skipped        uint64
	Applied        uint64
	Dups           uint64
	Epochs         uint64
	ViewInstalls   uint64
	FlushMsgs      uint64
	TransferBytes  uint64
	TransferChunks uint64
	UnavailMax     time.Duration
	UnavailMean    time.Duration
	Failures       []ChurnFailure
}

// MetadataPerEpoch is the batch-wide membership-message cost per
// reconfiguration.
func (s ChurnSummary) MetadataPerEpoch() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.FlushMsgs) / float64(s.Epochs)
}

// ViolationCounts tallies the batch's violations by oracle name.
func (s ChurnSummary) ViolationCounts() map[string]int {
	counts := make(map[string]int)
	for _, f := range s.Failures {
		for _, v := range f.Result.Violations {
			counts[v.Oracle]++
		}
	}
	return counts
}

// ViolationSummary renders the tally compactly ("none" when clean).
func (s ChurnSummary) ViolationSummary() string {
	counts := s.ViolationCounts()
	if len(counts) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s×%d", k, counts[k]))
	}
	return fmt.Sprintf("%v", parts)
}

func (rc *ChurnRunnerConfig) fillDefaults() {
	if rc.N == 0 {
		rc.N = 8
	}
	if rc.MsgsPer == 0 {
		rc.MsgsPer = 30
	}
	if rc.Interval == 0 {
		rc.Interval = 5 * time.Millisecond
	}
	if rc.Episodes == 0 {
		rc.Episodes = 20
	}
	g := &rc.Gen
	g.Nodes = rc.N
	if g.Horizon == 0 {
		g.Horizon = time.Duration(rc.MsgsPer) * rc.Interval
	}
	if g.MaxOutage == 0 {
		g.MaxOutage = 250 * time.Millisecond
	}
	if g.Crashes == 0 && g.Joins == 0 {
		g.Crashes, g.Joins, g.Stayers = 2, 2, 1
		// Mix network faults into the membership churn: a short
		// sub-detection partition and an inbound-lag window per
		// episode, so reconfiguration is exercised under degraded
		// links, not just clean ones.
		g.Partitions, g.Slows = 1, 1
	}
}

// RunChurnEpisodes executes rc.Episodes seeded random-churn episodes
// and aggregates them. Any single episode replays in isolation from
// (sizes, seed, script).
func RunChurnEpisodes(rc ChurnRunnerConfig) ChurnSummary {
	rc.fillDefaults()
	sum := ChurnSummary{Episodes: rc.Episodes}
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < rc.Episodes; i++ {
		seed := rc.Seed + int64(i)*1000003
		script := GenChurn(rand.New(rand.NewSource(seed^0x636875726e)), rc.Gen) // "churn"
		if rc.NoRecover {
			kept := script.Ops[:0]
			for _, op := range script.Ops {
				if op.Kind != OpRecover {
					kept = append(kept, op)
				}
			}
			script.Ops = kept
		}
		cfg := ChurnConfig{
			N:         rc.N,
			Senders:   rc.Senders,
			MsgsPer:   rc.MsgsPer,
			Interval:  rc.Interval,
			Seed:      seed,
			Script:    script,
			Heartbeat: rc.Heartbeat,
			Suspect:   rc.Suspect,
		}
		res := RunChurn(cfg)
		for b := 0; b < 8; b++ {
			buf[b] = byte(res.Digest >> (8 * b))
		}
		h.Write(buf[:])
		sum.Sent += res.Sent
		sum.Skipped += res.Skipped
		sum.Applied += res.Applied
		sum.Dups += res.Dups
		sum.Epochs += res.Epochs
		sum.ViewInstalls += res.ViewInstalls
		sum.FlushMsgs += res.FlushMsgs
		sum.TransferBytes += res.TransferBytes
		sum.TransferChunks += res.TransferChunks
		if res.UnavailMax > sum.UnavailMax {
			sum.UnavailMax = res.UnavailMax
		}
		sum.UnavailMean += res.UnavailMean
		if len(res.Violations) > 0 {
			f := ChurnFailure{Seed: seed, Result: res, MinConfig: cfg, MinResult: res}
			if rc.Shrink {
				f.MinConfig, f.MinResult = ShrinkChurn(cfg)
			}
			f.Repro = fmt.Sprintf("go run ./cmd/chaos -churn -n %d -senders %d -msgs %d -seed %d -script %q",
				rc.N, cfg.Senders, rc.MsgsPer, seed, f.MinConfig.Script.String())
			sum.Failures = append(sum.Failures, f)
		}
	}
	sum.Digest = h.Sum64()
	if rc.Episodes > 0 {
		sum.UnavailMean /= time.Duration(rc.Episodes)
	}
	return sum
}
