package chaos

import (
	"math/rand"
	"testing"
	"time"

	"catocs/internal/flowcontrol"
)

func TestScriptSlowFastRoundTrip(t *testing.T) {
	text := "@10ms slow 3 50ms; @200ms fast 3; @12ms crash 1; @40ms recover 1"
	s, err := ParseScript(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 4 {
		t.Fatalf("parsed %d ops", len(s.Ops))
	}
	if s.Ops[0].Kind != OpSlow || s.Ops[0].Lag != 50*time.Millisecond {
		t.Fatalf("slow op parsed as %+v", s.Ops[0])
	}
	again, err := ParseScript(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if s.String() != again.String() {
		t.Fatalf("round-trip changed script:\n  %s\n  %s", s, again)
	}
	for _, bad := range []string{
		"@10ms slow 3",      // missing lag
		"@10ms slow x 50ms", // bad node
		"@10ms fast",        // missing node
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted", bad)
		}
	}
}

func TestGenPairsSlowWithFast(t *testing.T) {
	cfg := GenConfig{
		Nodes: 6, Horizon: 150 * time.Millisecond, MaxOutage: 100 * time.Millisecond,
		Slows: 3, MaxLag: 80 * time.Millisecond,
	}
	s := Gen(rand.New(rand.NewSource(9)), cfg)
	counts := map[OpKind]int{}
	for _, op := range s.Ops {
		counts[op.Kind]++
		if op.Kind == OpSlow {
			if op.Lag < cfg.MaxLag/4 || op.Lag >= cfg.MaxLag {
				t.Fatalf("slow lag %s outside [%s, %s)", op.Lag, cfg.MaxLag/4, cfg.MaxLag)
			}
		}
	}
	if counts[OpSlow] != 3 || counts[OpFast] != 3 {
		t.Fatalf("unpaired slow/fast: %v", counts)
	}
	// Slowed nodes stay alive: they must not be exempted from liveness.
	if crashed := s.CrashedNodes(); len(crashed) != 0 {
		t.Fatalf("slow-only script reports crashed nodes %v", crashed)
	}
}

func TestBoundedMemoryOracle(t *testing.T) {
	budget := flowcontrol.Budget{MaxMsgs: 48}
	if v := CheckBoundedMemory(10, 20, flowcontrol.Budget{}, flowcontrol.Block); v != nil {
		t.Fatalf("unlimited budget produced violations %v", v)
	}
	if v := CheckBoundedMemory(10, 20, budget, flowcontrol.None); v != nil {
		t.Fatalf("no-policy run produced violations %v", v)
	}
	if v := CheckBoundedMemory(48, 48, budget, flowcontrol.Block); v != nil {
		t.Fatalf("at-budget occupancy produced violations %v", v)
	}
	v := CheckBoundedMemory(49, 60, budget, flowcontrol.Block)
	if len(v) != 2 {
		t.Fatalf("want 2 violations (holdback, stability), got %v", v)
	}
	// Spill admits every cast, so only the in-memory stability bound
	// applies to it; a deep holdback queue is legal.
	v = CheckBoundedMemory(200, 60, budget, flowcontrol.Spill)
	if len(v) != 1 {
		t.Fatalf("spill: want only the stability violation, got %v", v)
	}
}

// TestSlowConsumerEpisodesBoundedMemory is the satellite acceptance
// run: randomized slow-consumer episodes with a limited budget and the
// Spill policy, checked by the bounded-memory oracle (and every other
// oracle) on each episode. Spill is the policy under test because it
// admits every cast — so the liveness and same-set oracles keep their
// full force — while holding in-memory occupancy at the budget.
func TestSlowConsumerEpisodesBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized batch")
	}
	sum := RunEpisodes(RunnerConfig{
		Substrate: "cbcast",
		N:         5,
		Senders:   2,
		MsgsPer:   25,
		Episodes:  25,
		Seed:      2026,
		NoFaults:  true,
		Gen: GenConfig{
			Slows:  2,
			MaxLag: 120 * time.Millisecond,
			// Zero crashes/partitions/flaky-links would be refilled by
			// the default mix; ask for the minimum and rely on Slows for
			// the pressure.
			Crashes: 1,
		},
		Budget:   flowcontrol.Budget{MaxMsgs: 48},
		Overflow: flowcontrol.Spill,
	})
	if len(sum.Failures) != 0 {
		t.Fatalf("violations: %s (first: %+v)", sum.ViolationSummary(), sum.Failures[0].Result.Violations)
	}
	if sum.StabHighWater > 48 {
		t.Fatalf("stability high-water %d exceeds budget", sum.StabHighWater)
	}
	if sum.StabHighWater == 0 {
		t.Fatal("no stability pressure at all; episode too gentle to test anything")
	}
}
