package chaos

import (
	"fmt"
	"sort"
	"time"

	"catocs/internal/multicast"
	"catocs/internal/obs"
	"catocs/internal/scalecast"
	"catocs/internal/sim"
	"catocs/internal/state"
	"catocs/internal/transport"
	"catocs/internal/vclock"
)

// RunScalecastChurn drives the same churn schedule over the scalecast
// substrate — the E24 comparison arm. Scalecast has no membership
// protocol: reconfiguration is an operator-driven Rewire of every
// member to the new node list, applied here at the op's scheduled
// time (an omniscient operator — zero detection latency, the best
// case for scalecast). The consequences the experiment measures:
//
//   - No state transfer. A joiner observes the causal future only;
//     TransferBytes is structurally zero. Rebuilding state is the
//     application's job — the paper's §4.4 position, taken to its
//     limit.
//   - No crash recovery. A recovered process re-enters via JoinMember
//     as an empty replica: its WAL-less pre-crash casts are gone and
//     its store restarts blank. Store equivalence therefore CANNOT be
//     an oracle here, and the runner checks none — this arm measures
//     cost, not safety (scalecast's own invariants are E16/E18's job).
//   - Metadata is per-link, not per-view. FlushMsgs reports the sum of
//     control messages (acks, nacks, barriers, heartbeats) over the
//     whole run; callers subtract a no-churn control run to isolate
//     the reconfiguration cost, since link maintenance is nonzero even
//     in steady state.
//
// Epochs counts applied reconfigurations, so MetadataPerEpoch divides
// comparably with RunChurn.
func RunScalecastChurn(cfg ChurnConfig) ChurnResult {
	cfg.fillDefaults()
	if cfg.N < 3 {
		panic("chaos: RunScalecastChurn needs N ≥ 3")
	}
	k := sim.NewKernel(cfg.Seed)
	k.SetEventLimit(200_000_000)
	net := transport.NewSimNet(k, transport.LinkConfig{BaseDelay: 1 * time.Millisecond, Jitter: 1 * time.Millisecond})
	tracer := obs.NewTracer()
	net.Instrument(tracer, nil, "scalecast")
	sccfg := scalecast.Config{Group: "churn", Tracer: tracer}

	type scNode struct {
		id     transport.NodeID
		app    *state.Store
		member *scalecast.Member
		up     bool
		inc    uint32
		seq    int
	}
	var applied, dups uint64
	nodesByID := make(map[transport.NodeID]*scNode)
	deliverFor := func(ns *scNode) multicast.DeliverFunc {
		return func(d multicast.Delivered) {
			p, ok := d.Payload.([]byte)
			if !ok {
				return
			}
			key := string(p)
			if _, _, ok := ns.app.Get(key); ok {
				dups++
				return
			}
			ns.app.Put(key, uint64(1))
			applied++
		}
	}

	view := make([]transport.NodeID, cfg.N)
	initialInts := make([]int, cfg.N)
	for i := range view {
		view[i] = transport.NodeID(i)
		initialInts[i] = i
		nodesByID[view[i]] = &scNode{id: view[i], app: state.NewStore(), up: true}
	}
	var allMembers []*scalecast.Member
	members := scalecast.NewGroup(net, view, sccfg, func(rank vclock.ProcessID) multicast.DeliverFunc {
		return deliverFor(nodesByID[transport.NodeID(rank)]) // initial rank == node id
	})
	for i, m := range members {
		nodesByID[view[i]].member = m
	}
	allMembers = append(allMembers, members...)

	rewireAll := func() {
		cp := append([]transport.NodeID(nil), view...)
		for _, m := range allMembers {
			m.Rewire(cp)
		}
	}
	viewWithout := func(id transport.NodeID) {
		out := view[:0]
		for _, v := range view {
			if v != id {
				out = append(out, v)
			}
		}
		view = out
	}
	viewWith := func(id transport.NodeID) {
		view = append(view, id)
		sort.Slice(view, func(a, b int) bool { return view[a] < view[b] })
	}

	var reconfigs uint64
	for _, op := range cfg.Script.Ops {
		op := op
		k.At(op.At, func() {
			ns := nodesByID[op.Node]
			switch op.Kind {
			case OpCrash:
				if ns == nil || !ns.up {
					return
				}
				net.Crash(ns.id)
				ns.member.Close()
				ns.up = false
				viewWithout(ns.id)
				rewireAll() // the operator routes around the dead node
				reconfigs++
			case OpRecover:
				if ns == nil || ns.up {
					return
				}
				net.Recover(ns.id)
				// Re-entry is a fresh JoinMember: no WAL, no transfer — the
				// store restarts empty and pre-crash casts are lost.
				ns.app = state.NewStore()
				ns.inc++
				viewWith(ns.id)
				ns.member = scalecast.JoinMember(net, append([]transport.NodeID(nil), view...),
					ns.id, sccfg, deliverFor(ns))
				allMembers = append(allMembers, ns.member)
				rewireAll()
				ns.up = true
				reconfigs++
			case OpJoin:
				if ns != nil {
					return
				}
				ns = &scNode{id: op.Node, app: state.NewStore(), up: true}
				nodesByID[op.Node] = ns
				viewWith(ns.id)
				ns.member = scalecast.JoinMember(net, append([]transport.NodeID(nil), view...),
					ns.id, sccfg, deliverFor(ns))
				allMembers = append(allMembers, ns.member)
				rewireAll()
				reconfigs++
			case OpLeave:
				if ns == nil || !ns.up {
					return
				}
				viewWithout(ns.id)
				rewireAll() // the departing member is in allMembers: its rewire closes it
				ns.up = false
				delete(nodesByID, ns.id)
				reconfigs++
			}
		})
	}

	var sent, skipped uint64
	for s := 0; s < cfg.Senders; s++ {
		ns := nodesByID[transport.NodeID(s)]
		for i := 0; i < cfg.MsgsPer; i++ {
			s, i := s, i
			k.At(time.Duration(i)*cfg.Interval+time.Duration(s)*100*time.Microsecond, func() {
				if !ns.up {
					skipped++
					return
				}
				payload := []byte(fmt.Sprintf("o%d.i%d.n%d", s, ns.inc, ns.seq))
				ns.seq++
				ns.member.Multicast(payload, len(payload))
				sent++
			})
		}
	}

	horizon := time.Duration(cfg.MsgsPer) * cfg.Interval
	if end := cfg.Script.End(); end > horizon {
		horizon = end
	}
	k.RunUntil(horizon + cfg.Settle)

	events := tracer.Events()
	res := ChurnResult{
		Seed:    cfg.Seed,
		Script:  cfg.Script,
		Digest:  DigestEvents(events),
		Sent:    sent,
		Skipped: skipped,
		Applied: applied,
		Dups:    dups,
		Epochs:  reconfigs,
	}
	for _, m := range allMembers {
		res.FlushMsgs += m.CtrlMsgs.Value()
	}
	res.UnavailMax, res.UnavailMean = unavailability(events, initialInts)
	return res
}
