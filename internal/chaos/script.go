package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"catocs/internal/transport"
)

// OpKind enumerates the fault operations a Script can schedule.
type OpKind int

const (
	OpCrash OpKind = iota
	OpRecover
	OpPartition
	OpHeal
	OpLink
	OpClearLink
	OpSlow
	OpFast
	// OpJoin and OpLeave are membership ops: a fresh node requests
	// admission; a member departs gracefully. They are interpreted by
	// the churn runner (churn.go), which drives the group-membership
	// stack — Apply, which only speaks to the network interposer,
	// ignores them. In churn episodes OpCrash/OpRecover also gain
	// membership meaning: crash fail-stops a member (its WAL survives),
	// recover restarts it from that WAL and rejoins it as the same
	// identity.
	OpJoin
	OpLeave
)

// Op is one scheduled fault action. Which fields are meaningful
// depends on Kind: Node for crash/recover/slow/fast, Lag for slow,
// Islands for part, From/To and Fault for link, From/To for clear,
// nothing extra for heal.
type Op struct {
	At      time.Duration
	Kind    OpKind
	Node    transport.NodeID
	Lag     time.Duration
	Islands [][]transport.NodeID
	From    transport.NodeID
	To      transport.NodeID
	Fault   LinkFault
}

// String renders one op in the script grammar.
func (o Op) String() string {
	switch o.Kind {
	case OpCrash:
		return fmt.Sprintf("@%s crash %d", o.At, o.Node)
	case OpRecover:
		return fmt.Sprintf("@%s recover %d", o.At, o.Node)
	case OpPartition:
		var islands []string
		for _, isl := range o.Islands {
			var ids []string
			for _, id := range isl {
				ids = append(ids, strconv.Itoa(int(id)))
			}
			islands = append(islands, strings.Join(ids, ","))
		}
		return fmt.Sprintf("@%s part %s", o.At, strings.Join(islands, "|"))
	case OpHeal:
		return fmt.Sprintf("@%s heal", o.At)
	case OpLink:
		return fmt.Sprintf("@%s link %d>%d %s", o.At, o.From, o.To, o.Fault)
	case OpClearLink:
		return fmt.Sprintf("@%s clear %d>%d", o.At, o.From, o.To)
	case OpSlow:
		return fmt.Sprintf("@%s slow %d %s", o.At, o.Node, o.Lag)
	case OpFast:
		return fmt.Sprintf("@%s fast %d", o.At, o.Node)
	case OpJoin:
		return fmt.Sprintf("@%s join %d", o.At, o.Node)
	case OpLeave:
		return fmt.Sprintf("@%s leave %d", o.At, o.Node)
	}
	return fmt.Sprintf("@%s ?", o.At)
}

// Script is an ordered fault schedule. Scripts print and parse a
// compact one-line grammar so a failing schedule can be pasted
// straight back into the CLI:
//
//	@12ms crash 3; @30ms recover 3; @40ms part 0,1,2|3,4; @90ms heal;
//	@10ms link 2>4 drop=0.30,dup=0.10,delay=0.50x20ms; @50ms clear 2>4;
//	@10ms slow 3 50ms; @200ms fast 3
type Script struct {
	Ops []Op
}

// String renders the schedule in the script grammar; empty scripts
// render as "".
func (s Script) String() string {
	var parts []string
	for _, op := range s.Ops {
		parts = append(parts, op.String())
	}
	return strings.Join(parts, "; ")
}

// ParseScript parses the grammar String produces. An empty string is
// an empty script.
func ParseScript(text string) (Script, error) {
	var s Script
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, clause := range strings.Split(text, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		op, err := parseOp(clause)
		if err != nil {
			return Script{}, fmt.Errorf("chaos: bad clause %q: %w", clause, err)
		}
		s.Ops = append(s.Ops, op)
	}
	return s, nil
}

func parseOp(clause string) (Op, error) {
	fields := strings.Fields(clause)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "@") {
		return Op{}, fmt.Errorf("want \"@<time> <verb> ...\"")
	}
	at, err := time.ParseDuration(strings.TrimPrefix(fields[0], "@"))
	if err != nil {
		return Op{}, err
	}
	op := Op{At: at}
	switch fields[1] {
	case "crash", "recover", "join", "leave":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("want \"%s <node>\"", fields[1])
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return Op{}, err
		}
		op.Node = transport.NodeID(n)
		switch fields[1] {
		case "crash":
			op.Kind = OpCrash
		case "recover":
			op.Kind = OpRecover
		case "join":
			op.Kind = OpJoin
		case "leave":
			op.Kind = OpLeave
		}
	case "part":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("want \"part a,b|c,d\"")
		}
		op.Kind = OpPartition
		for _, isl := range strings.Split(fields[2], "|") {
			var ids []transport.NodeID
			for _, tok := range strings.Split(isl, ",") {
				n, err := strconv.Atoi(tok)
				if err != nil {
					return Op{}, err
				}
				ids = append(ids, transport.NodeID(n))
			}
			op.Islands = append(op.Islands, ids)
		}
	case "heal":
		op.Kind = OpHeal
	case "slow":
		if len(fields) != 4 {
			return Op{}, fmt.Errorf("want \"slow <node> <lag>\"")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return Op{}, err
		}
		lag, err := time.ParseDuration(fields[3])
		if err != nil {
			return Op{}, err
		}
		op.Kind, op.Node, op.Lag = OpSlow, transport.NodeID(n), lag
	case "fast":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("want \"fast <node>\"")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return Op{}, err
		}
		op.Kind, op.Node = OpFast, transport.NodeID(n)
	case "link", "clear":
		if fields[1] == "link" && len(fields) != 4 {
			return Op{}, fmt.Errorf("want \"link a>b <fault>\"")
		}
		if fields[1] == "clear" && len(fields) != 3 {
			return Op{}, fmt.Errorf("want \"clear a>b\"")
		}
		pair := strings.SplitN(fields[2], ">", 2)
		if len(pair) != 2 {
			return Op{}, fmt.Errorf("want \"<from>><to>\"")
		}
		from, err := strconv.Atoi(pair[0])
		if err != nil {
			return Op{}, err
		}
		to, err := strconv.Atoi(pair[1])
		if err != nil {
			return Op{}, err
		}
		op.From, op.To = transport.NodeID(from), transport.NodeID(to)
		if fields[1] == "clear" {
			op.Kind = OpClearLink
			break
		}
		op.Kind = OpLink
		op.Fault, err = parseFault(fields[3])
		if err != nil {
			return Op{}, err
		}
	default:
		return Op{}, fmt.Errorf("unknown verb %q", fields[1])
	}
	return op, nil
}

func parseFault(text string) (LinkFault, error) {
	var f LinkFault
	if text == "clean" {
		return f, nil
	}
	for _, part := range strings.Split(text, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return f, fmt.Errorf("bad fault term %q", part)
		}
		switch kv[0] {
		case "drop":
			p, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return f, err
			}
			f.DropProb = p
		case "dup":
			p, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return f, err
			}
			f.DupProb = p
		case "delay":
			pd := strings.SplitN(kv[1], "x", 2)
			if len(pd) != 2 {
				return f, fmt.Errorf("want delay=<prob>x<duration>")
			}
			p, err := strconv.ParseFloat(pd[0], 64)
			if err != nil {
				return f, err
			}
			d, err := time.ParseDuration(pd[1])
			if err != nil {
				return f, err
			}
			f.DelayProb, f.Delay = p, d
		default:
			return f, fmt.Errorf("unknown fault term %q", kv[0])
		}
	}
	return f, nil
}

// Apply schedules every op on the interposer's clock. Call before the
// simulation (or live traffic) starts so @0 ops land first.
func (s Script) Apply(ip *Interposer) {
	for _, op := range s.Ops {
		op := op
		ip.After(op.At, func() {
			switch op.Kind {
			case OpCrash:
				ip.Crash(op.Node)
			case OpRecover:
				ip.Recover(op.Node)
			case OpPartition:
				ip.Partition(op.Islands...)
			case OpHeal:
				ip.Heal()
			case OpLink:
				ip.SetLink(op.From, op.To, op.Fault)
			case OpClearLink:
				ip.ClearLink(op.From, op.To)
			case OpSlow:
				ip.Slow(op.Node, op.Lag)
			case OpFast:
				ip.Fast(op.Node)
			case OpJoin, OpLeave:
				// Membership ops have no network effect; the churn runner
				// schedules them against the group stack itself.
			}
		})
	}
}

// CrashedNodes returns the distinct nodes the script crashes at any
// point, sorted — the "faulty" set the liveness oracle exempts from
// validity.
func (s Script) CrashedNodes() []int {
	seen := make(map[int]bool)
	var out []int
	for _, op := range s.Ops {
		if op.Kind == OpCrash && !seen[int(op.Node)] {
			seen[int(op.Node)] = true
			out = append(out, int(op.Node))
		}
	}
	sort.Ints(out)
	return out
}

// End returns the time of the last scheduled op (0 for an empty
// script) — runners extend the episode horizon past it so faults get
// a chance to bite and heal.
func (s Script) End() time.Duration {
	var end time.Duration
	for _, op := range s.Ops {
		if op.At > end {
			end = op.At
		}
	}
	return end
}

// GenConfig bounds the randomized fault schedules Gen produces.
type GenConfig struct {
	// Nodes is the group size; faults pick targets in [0, Nodes).
	Nodes int
	// Horizon is the window fault onsets are drawn from.
	Horizon time.Duration
	// MaxOutage bounds how long a crash or partition lasts before its
	// paired recover/heal.
	MaxOutage time.Duration
	// Crashes, Partitions, FlakyLinks, Slows count how many of each
	// fault pair to schedule.
	Crashes    int
	Partitions int
	FlakyLinks int
	Slows      int
	// MaxLag bounds the inbound delivery lag a generated slow-consumer
	// episode applies (the floor is MaxLag/4, mirroring outages).
	MaxLag time.Duration
	// Flaky bounds the per-link fault mix for FlakyLinks: each
	// generated link draws probabilities in [0, bound) and uses
	// Flaky.Delay verbatim.
	Flaky LinkFault
}

// Gen draws a random fault schedule within cfg's bounds from rng.
// Every destructive op is paired with its repair (crash→recover,
// part→heal, link→clear), so schedules always end with the network
// whole — the liveness oracle requires it under the fail-stop model.
// The result is stably sorted by onset time.
func Gen(rng *rand.Rand, cfg GenConfig) Script {
	if cfg.Nodes < 2 {
		panic("chaos: Gen needs at least 2 nodes")
	}
	dur := func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(max)))
	}
	var s Script
	for i := 0; i < cfg.Crashes; i++ {
		at := dur(cfg.Horizon)
		outage := cfg.MaxOutage/4 + dur(cfg.MaxOutage*3/4)
		node := transport.NodeID(rng.Intn(cfg.Nodes))
		s.Ops = append(s.Ops,
			Op{At: at, Kind: OpCrash, Node: node},
			Op{At: at + outage, Kind: OpRecover, Node: node},
		)
	}
	for i := 0; i < cfg.Partitions; i++ {
		at := dur(cfg.Horizon)
		outage := cfg.MaxOutage/4 + dur(cfg.MaxOutage*3/4)
		// Cut 1..Nodes/2 nodes into a minority island; the rest form
		// the implicit island 0.
		cut := 1 + rng.Intn(cfg.Nodes/2)
		perm := rng.Perm(cfg.Nodes)
		minority := make([]transport.NodeID, cut)
		for j := 0; j < cut; j++ {
			minority[j] = transport.NodeID(perm[j])
		}
		sort.Slice(minority, func(a, b int) bool { return minority[a] < minority[b] })
		var majority []transport.NodeID
	outer:
		for n := 0; n < cfg.Nodes; n++ {
			for _, m := range minority {
				if transport.NodeID(n) == m {
					continue outer
				}
			}
			majority = append(majority, transport.NodeID(n))
		}
		s.Ops = append(s.Ops,
			Op{At: at, Kind: OpPartition, Islands: [][]transport.NodeID{majority, minority}},
			Op{At: at + outage, Kind: OpHeal},
		)
	}
	for i := 0; i < cfg.FlakyLinks; i++ {
		at := dur(cfg.Horizon)
		outage := cfg.MaxOutage/4 + dur(cfg.MaxOutage*3/4)
		from := transport.NodeID(rng.Intn(cfg.Nodes))
		to := transport.NodeID(rng.Intn(cfg.Nodes - 1))
		if to >= from {
			to++
		}
		f := LinkFault{
			DropProb:  cfg.Flaky.DropProb * rng.Float64(),
			DupProb:   cfg.Flaky.DupProb * rng.Float64(),
			DelayProb: cfg.Flaky.DelayProb * rng.Float64(),
			Delay:     cfg.Flaky.Delay,
		}
		s.Ops = append(s.Ops,
			Op{At: at, Kind: OpLink, From: from, To: to, Fault: f},
			Op{At: at + outage, Kind: OpClearLink, From: from, To: to},
		)
	}
	for i := 0; i < cfg.Slows; i++ {
		at := dur(cfg.Horizon)
		outage := cfg.MaxOutage/4 + dur(cfg.MaxOutage*3/4)
		lag := cfg.MaxLag/4 + dur(cfg.MaxLag*3/4)
		node := transport.NodeID(rng.Intn(cfg.Nodes))
		// A slowed node is NOT in CrashedNodes: it stays alive and must
		// eventually deliver everything — that is the point of the
		// slow-consumer model, and the liveness oracle holds it to it.
		s.Ops = append(s.Ops,
			Op{At: at, Kind: OpSlow, Node: node, Lag: lag},
			Op{At: at + outage, Kind: OpFast, Node: node},
		)
	}
	sort.SliceStable(s.Ops, func(a, b int) bool { return s.Ops[a].At < s.Ops[b].At })
	return s
}

// GenChurnConfig bounds the randomized churn schedules GenChurn
// produces.
type GenChurnConfig struct {
	// Nodes is the initial group size. Crash targets are drawn from
	// [2, Nodes): ranks 0 and 1 form a stable core that is never
	// crashed, so every view always has two live donors and every
	// joiner a live contact. (Crashing both donors mid-transfer is the
	// known liveness hole of two-donor state transfer; the ROADMAP
	// tracks widening it.)
	Nodes int
	// Horizon is the window op onsets are drawn from.
	Horizon time.Duration
	// MaxOutage bounds how long a crash lasts before its paired
	// recover, and how long a joiner stays before its paired leave.
	MaxOutage time.Duration
	// Crashes is how many crash→recover pairs to schedule.
	Crashes int
	// Joins is how many join→leave pairs to schedule. Joined node IDs
	// are allocated from Nodes upward, so they never collide with the
	// initial members.
	Joins int
	// Stayers is how many of the Joins keep their member to the end of
	// the episode (no paired leave) — the state-transfer path with a
	// surviving joiner, which the joiner-state oracle checks hardest.
	Stayers int
	// Partitions is how many partition→heal pairs to schedule: one
	// non-core member cut off from everyone, healed within
	// SafePartition. The bound matters: there is no partition-merge
	// protocol, so a cut the failure detector notices becomes a
	// permanent eviction (§6's blocked-minority story, measured in
	// E18) — a *survivable* partition must heal before detection.
	Partitions int
	// SafePartition bounds a partition's duration (default 20ms, under
	// the default 40ms suspect timeout minus a heartbeat).
	SafePartition time.Duration
	// Slows is how many slow→fast windows to schedule. Inbound
	// consumer lag is deliberately invisible to silence-based failure
	// detection (the E19 point), so a slowed member rides through
	// concurrent reconfigurations without eviction — the oracles must
	// still hold once it catches up in the settle window.
	Slows int
	// MaxLag bounds the inbound lag of generated slow windows
	// (default 10ms).
	MaxLag time.Duration
}

// GenChurn draws a random churn schedule within cfg's bounds: paired
// crash→recover episodes over the initial members, join(→leave)
// episodes over fresh node IDs, short partition→heal cuts, and
// slow→fast inbound-lag windows — so generated campaigns mix network
// faults with membership change rather than testing them separately.
// Every crash is repaired — the rejoin-liveness oracle requires
// recovered members back in the final view — every partition heals
// before the failure detector fires, and leaves always follow their
// own join.
func GenChurn(rng *rand.Rand, cfg GenChurnConfig) Script {
	if cfg.Nodes < 3 {
		panic("chaos: GenChurn needs at least 3 nodes (a stable 2-node core plus a crashable member)")
	}
	dur := func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(max)))
	}
	var s Script
	for i := 0; i < cfg.Crashes; i++ {
		at := dur(cfg.Horizon)
		outage := cfg.MaxOutage/4 + dur(cfg.MaxOutage*3/4)
		node := transport.NodeID(2 + rng.Intn(cfg.Nodes-2))
		s.Ops = append(s.Ops,
			Op{At: at, Kind: OpCrash, Node: node},
			Op{At: at + outage, Kind: OpRecover, Node: node},
		)
	}
	for i := 0; i < cfg.Joins; i++ {
		at := dur(cfg.Horizon)
		node := transport.NodeID(cfg.Nodes + i)
		s.Ops = append(s.Ops, Op{At: at, Kind: OpJoin, Node: node})
		if i >= cfg.Stayers {
			stay := cfg.MaxOutage/4 + dur(cfg.MaxOutage*3/4)
			s.Ops = append(s.Ops, Op{At: at + stay, Kind: OpLeave, Node: node})
		}
	}
	safe := cfg.SafePartition
	if safe <= 0 {
		safe = 20 * time.Millisecond
	}
	for i := 0; i < cfg.Partitions; i++ {
		at := dur(cfg.Horizon)
		cut := safe/2 + dur(safe/2)
		node := transport.NodeID(2 + rng.Intn(cfg.Nodes-2))
		// Majority island first: unlisted nodes (joiners allocated
		// from Nodes upward) land in the implicit island 0, so they
		// stay with the majority rather than joining the cut member.
		rest := make([]transport.NodeID, 0, cfg.Nodes-1)
		for r := 0; r < cfg.Nodes; r++ {
			if transport.NodeID(r) != node {
				rest = append(rest, transport.NodeID(r))
			}
		}
		s.Ops = append(s.Ops,
			Op{At: at, Kind: OpPartition, Islands: [][]transport.NodeID{rest, {node}}},
			Op{At: at + cut, Kind: OpHeal},
		)
	}
	maxLag := cfg.MaxLag
	if maxLag <= 0 {
		maxLag = 10 * time.Millisecond
	}
	for i := 0; i < cfg.Slows; i++ {
		at := dur(cfg.Horizon)
		window := cfg.MaxOutage/4 + dur(cfg.MaxOutage*3/4)
		node := transport.NodeID(2 + rng.Intn(cfg.Nodes-2))
		lag := maxLag/2 + dur(maxLag/2)
		s.Ops = append(s.Ops,
			Op{At: at, Kind: OpSlow, Node: node, Lag: lag},
			Op{At: at + window, Kind: OpFast, Node: node},
		)
	}
	sort.SliceStable(s.Ops, func(a, b int) bool { return s.Ops[a].At < s.Ops[b].At })
	return s
}
