package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"catocs/internal/flowcontrol"
	"catocs/internal/mgcast"
	"catocs/internal/multicast"
	"catocs/internal/obs"
	"catocs/internal/scalecast"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/vclock"
	"catocs/internal/wal"
)

// Substrates lists the broadcast disciplines the harness exercises,
// in report order.
var Substrates = []string{"cbcast", "abcast", "scalecast", "mgcast"}

// DefaultFaults is the background fault mix for randomized episodes:
// light loss, duplication, and reordering on every link, on top of
// whatever the schedule injects.
var DefaultFaults = LinkFault{
	DropProb:  0.02,
	DupProb:   0.02,
	DelayProb: 0.05,
	Delay:     5 * time.Millisecond,
}

// Config parameterises one chaos episode.
type Config struct {
	// Substrate is "cbcast" (atomic CBCAST), "abcast" (the repo's
	// causally-consistent fixed sequencer, run atomic), "scalecast", or
	// "mgcast" (Skeen-style multi-group atomic multicast).
	Substrate string
	// N is the group size. Zero defaults to 6.
	N int
	// Senders is how many of the first N ranks originate traffic. Zero
	// defaults to min(N, 4). Crashed senders skip their sends — the
	// fail-stop model the liveness oracle assumes.
	Senders int
	// MsgsPer is messages per sender. Zero defaults to 30.
	MsgsPer int
	// Interval is the per-sender send period. Zero defaults to 5ms.
	Interval time.Duration
	// Settle is quiet time after the last send and last fault op, so
	// recovery protocols finish before the oracles run. Zero defaults
	// to 2s.
	Settle time.Duration
	// Seed drives the kernel, the interposer, and the WAL trial.
	Seed int64
	// Script is the fault schedule. Gen's invariant applies: every
	// destructive op must be repaired before the settle window, or the
	// liveness oracle will (correctly) fire.
	Script Script
	// Faults is the background fault mix on every link.
	Faults LinkFault
	// Degree is the scalecast overlay degree (0 = its default).
	Degree int
	// Groups is the number of overlapping destination groups for mgcast
	// episodes (0 = 4); the WrapGroups topology spreads them over the N
	// nodes with group size max(2, N/2), so neighbours overlap.
	Groups int
	// K is how many destination groups each mgcast cast addresses
	// (0 = 2, clamped to Groups).
	K int
	// Budget bounds per-group buffer memory; the zero value is
	// unlimited. With a limited budget the bounded-memory oracle runs.
	Budget flowcontrol.Budget
	// Overflow picks what happens when the budget is hit. The runner
	// supports None, Block, Shed, and Spill; Suspect needs a membership
	// monitor the episode harness does not run.
	Overflow flowcontrol.Policy
	// DeltaClocks sends delta-encoded vector-clock stamps on the
	// cbcast/abcast substrates, so loss/reorder/duplication episodes
	// audit the reconstruction chain, not just the full-stamp path.
	DeltaClocks bool
	// OrderBatch batches the abcast sequencer's ordering announcements
	// (<2 = every assignment is its own OrderMsg, the unbatched wire).
	OrderBatch int
}

func (cfg *Config) fillDefaults() {
	if cfg.N == 0 {
		cfg.N = 6
	}
	if cfg.Senders == 0 {
		cfg.Senders = cfg.N
		if cfg.Senders > 4 {
			cfg.Senders = 4
		}
	}
	if cfg.MsgsPer == 0 {
		cfg.MsgsPer = 30
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	if cfg.Settle == 0 {
		cfg.Settle = 2 * time.Second
	}
	if cfg.Substrate == "mgcast" {
		if cfg.Groups == 0 {
			cfg.Groups = 4
		}
		if cfg.K == 0 {
			cfg.K = 2
		}
		if cfg.K > cfg.Groups {
			cfg.K = cfg.Groups
		}
	}
}

// Result is what one episode measured.
type Result struct {
	Substrate string
	Seed      int64
	Script    Script
	// Digest is an FNV-1a hash of the full event trace; two runs of
	// the same Config produce the same digest or determinism is broken.
	Digest uint64
	// Sent counts application multicasts; Skipped counts sends elided
	// because the sender was crashed at fire time.
	Sent    uint64
	Skipped uint64
	// Delivered counts application deliveries across all nodes.
	Delivered uint64
	// Faults counts what the interposer injected.
	Faults FaultStats
	// MaxHoldback is the worst holdback-queue occupancy any member saw
	// (buffer growth under faults — the §5 resource argument).
	MaxHoldback int64
	// StabHighWater is the worst unstable-message count any member's
	// stability matrix tracked (0 for scalecast, which has none).
	StabHighWater int64
	// UnavailMax / UnavailMean: the longest delivery silence per node
	// (max gap between consecutive deliveries, measured from the first
	// send), worst and mean over nodes. Partitions surface here — the
	// paper's §6 point that CATOCS blocks rather than degrades.
	UnavailMax  time.Duration
	UnavailMean time.Duration
	// Violations is empty iff every oracle passed.
	Violations []Violation
}

// Run executes one episode and checks every applicable oracle.
func Run(cfg Config) Result {
	cfg.fillDefaults()
	k := sim.NewKernel(cfg.Seed)
	k.SetEventLimit(200_000_000)
	net := transport.NewSimNet(k, transport.LinkConfig{
		BaseDelay: 2 * time.Millisecond,
		Jitter:    2 * time.Millisecond,
	})
	tracer := obs.NewTracer()
	net.Instrument(tracer, nil, cfg.Substrate)
	ip := NewInterposer(net, cfg.Seed^0x5eedfa01)
	ip.SetDefault(cfg.Faults)

	nodes := make([]transport.NodeID, cfg.N)
	groupNodes := make([]int, cfg.N)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
		groupNodes[i] = i
	}

	var delivered uint64
	onDeliver := func(multicast.Delivered) { delivered++ }
	deliverFor := func(vclock.ProcessID) multicast.DeliverFunc { return onDeliver }

	var multicastFrom func(rank int, payload any)
	var holdMax func() int64
	var stabHigh func() int64
	// destsFor (mgcast only) maps a sent message to its destination
	// node set for the dest-liveness oracle.
	var destsFor func(sender int64, seq uint64) []int
	switch cfg.Substrate {
	case "cbcast", "abcast":
		ordering := multicast.Causal
		if cfg.Substrate == "abcast" {
			ordering = multicast.TotalCausal
		}
		mcfg := multicast.Config{
			Group:       "chaos",
			Ordering:    ordering,
			Atomic:      true, // stability tracking + ack/NACK loss recovery
			Tracer:      tracer,
			Budget:      cfg.Budget,
			Overflow:    cfg.Overflow,
			DeltaClocks: cfg.DeltaClocks,
			OrderBatch:  cfg.OrderBatch,
		}
		if cfg.Overflow == flowcontrol.Spill {
			mcfg.SpillDevice = wal.NewDevice()
		}
		members := multicast.NewGroup(ip, nodes, mcfg, deliverFor)
		multicastFrom = func(rank int, payload any) { members[rank].Multicast(payload, chaosPayloadBytes) }
		holdMax = func() int64 {
			var max int64
			for _, m := range members {
				if v := m.HoldbackGauge.Max(); v > max {
					max = v
				}
			}
			return max
		}
		stabHigh = func() int64 {
			var max int64
			for _, m := range members {
				if s := m.Stability(); s != nil {
					if v := s.HighWater(); v > max {
						max = v
					}
				}
			}
			return max
		}
		defer func() {
			for _, m := range members {
				m.Close()
			}
		}()
	case "scalecast":
		members := scalecast.NewGroup(ip, nodes, scalecast.Config{
			Group:    "chaos",
			Degree:   cfg.Degree,
			Tracer:   tracer,
			Budget:   cfg.Budget,
			Overflow: cfg.Overflow,
		}, deliverFor)
		multicastFrom = func(rank int, payload any) { members[rank].Multicast(payload, chaosPayloadBytes) }
		holdMax = func() int64 {
			var max int64
			for _, m := range members {
				if v := m.HoldbackGauge.Max(); v > max {
					max = v
				}
			}
			return max
		}
		stabHigh = func() int64 { return 0 }
		defer func() {
			for _, m := range members {
				m.Close()
			}
		}()
	case "mgcast":
		gsize := cfg.N / 2
		if gsize < 2 {
			gsize = 2
		}
		table := mgcast.WrapGroups(cfg.N, cfg.Groups, gsize)
		names := mgcast.GroupNames(cfg.Groups)
		members := mgcast.NewUniverse(ip, nodes, mgcast.Config{
			Groups:   table,
			Tracer:   tracer,
			Budget:   cfg.Budget.Share(cfg.Senders),
			Overflow: cfg.Overflow,
		}, func(vclock.ProcessID) mgcast.DeliverFunc {
			return func(mgcast.Delivered) { delivered++ }
		})
		// Destination picks are drawn up front from the episode seed so
		// the schedule replays bit-identically.
		pickRng := rand.New(rand.NewSource(cfg.Seed ^ 0x6d67636173)) // "mgcas"
		picks := make([][][]string, cfg.Senders)
		for s := range picks {
			picks[s] = make([][]string, cfg.MsgsPer)
			for i := range picks[s] {
				picks[s][i] = pickGroups(pickRng, names, cfg.K)
			}
		}
		dests := make(map[msgKey][]int)
		multicastFrom = func(rank int, payload any) {
			i := payload.(int)
			id := members[rank].Multicast(picks[rank][i], payload, chaosPayloadBytes)
			if id != (mgcast.MsgID{}) {
				ranks := members[rank].DestRanks(picks[rank][i])
				ds := make([]int, len(ranks))
				for j, r := range ranks {
					ds[j] = int(r)
				}
				dests[msgKey{Sender: int64(id.Sender), Seq: id.Seq}] = ds
			}
		}
		destsFor = func(sender int64, seq uint64) []int {
			return dests[msgKey{Sender: sender, Seq: seq}]
		}
		holdMax = func() int64 {
			var max int64
			for _, m := range members {
				if v := m.HoldbackGauge.Max(); v > max {
					max = v
				}
			}
			return max
		}
		stabHigh = func() int64 { return 0 }
		defer func() {
			for _, m := range members {
				m.Close()
			}
		}()
	default:
		panic("chaos: unknown substrate " + cfg.Substrate)
	}

	cfg.Script.Apply(ip)

	var sent, skipped uint64
	for s := 0; s < cfg.Senders; s++ {
		for i := 0; i < cfg.MsgsPer; i++ {
			s, i := s, i
			k.At(time.Duration(i)*cfg.Interval+time.Duration(s)*100*time.Microsecond, func() {
				if ip.Crashed(transport.NodeID(s)) {
					skipped++ // fail-stop: a crashed process originates nothing
					return
				}
				sent++
				multicastFrom(s, i)
			})
		}
	}
	horizon := time.Duration(cfg.MsgsPer) * cfg.Interval
	if end := cfg.Script.End(); end > horizon {
		horizon = end
	}
	k.RunUntil(horizon + cfg.Settle)

	events := tracer.Events()
	res := Result{
		Substrate:     cfg.Substrate,
		Seed:          cfg.Seed,
		Script:        cfg.Script,
		Digest:        DigestEvents(events),
		Sent:          sent,
		Skipped:       skipped,
		Delivered:     delivered,
		Faults:        ip.Stats(),
		MaxHoldback:   holdMax(),
		StabHighWater: stabHigh(),
	}
	res.UnavailMax, res.UnavailMean = unavailability(events, groupNodes)

	orders := DeliveryOrders(events)
	if cfg.Substrate == "mgcast" {
		// Skeen's agreement promises a single global timestamp order
		// across overlapping destination sets — the acyclicity oracle —
		// plus delivery at exactly the destination members. It does NOT
		// promise causal (or even per-sender FIFO) order: concurrent
		// proposals can finalise against send order, so the causal,
		// same-set, and stability oracles do not apply. Casts parked by
		// a Block window at episode end have no recorded destinations
		// and are skipped by the dest oracle.
		res.Violations = append(res.Violations, CheckAcyclicOrder(orders)...)
		res.Violations = append(res.Violations, CheckDestLiveness(events, destsFor, cfg.Script.CrashedNodes())...)
	} else {
		res.Violations = append(res.Violations, CheckCausalOrder(events)...)
		if cfg.Substrate == "abcast" {
			res.Violations = append(res.Violations, CheckTotalOrder(orders)...)
			// The cross-group acyclicity oracle degenerates to pairwise
			// total order within one group; run it too so both oracles
			// audit the same trace.
			res.Violations = append(res.Violations, CheckAcyclicOrder(orders)...)
		}
		res.Violations = append(res.Violations, CheckSameSet(orders, groupNodes)...)
		res.Violations = append(res.Violations, CheckLiveness(events, groupNodes, cfg.Script.CrashedNodes())...)
		if cfg.Substrate != "scalecast" {
			res.Violations = append(res.Violations, CheckStabilitySafety(events, groupNodes)...)
			// Scalecast's budget bounds its retransmission logs, not the
			// holdback/stability pair this oracle audits; its bound is
			// asserted by the package's own tests.
			res.Violations = append(res.Violations, CheckBoundedMemory(res.MaxHoldback, res.StabHighWater, cfg.Budget, cfg.Overflow)...)
		}
	}
	res.Violations = append(res.Violations, checkWALDurability(cfg.Seed)...)
	return res
}

// pickGroups draws k distinct group names from names.
func pickGroups(rng *rand.Rand, names []string, k int) []string {
	if k >= len(names) {
		return append([]string(nil), names...)
	}
	idx := rng.Perm(len(names))[:k]
	sort.Ints(idx)
	out := make([]string, k)
	for i, j := range idx {
		out[i] = names[j]
	}
	return out
}

// chaosPayloadBytes matches the E16/E17 payload model.
const chaosPayloadBytes = 64

// checkWALDurability runs the episode's durability trial: append a
// seeded batch of records, tear the final append (crash mid-write),
// and require recovery to return exactly the acknowledged prefix.
func checkWALDurability(seed int64) []Violation {
	rng := rand.New(rand.NewSource(seed ^ 0x77a1))
	dev := wal.NewDevice()
	n := 5 + rng.Intn(20)
	for i := 1; i <= n; i++ {
		dev.Append(wal.Record{Object: "o", Seq: uint64(i), Value: rng.Intn(1000)})
	}
	dev.AppendTorn(wal.Record{Object: "o", Seq: uint64(n + 1), Value: rng.Intn(1000)})
	s, got, err := wal.Recover(dev)
	if err != nil {
		return []Violation{{Oracle: "wal-durability", Detail: fmt.Sprintf("recovery failed on a torn tail: %v", err)}}
	}
	if got != n {
		return []Violation{{Oracle: "wal-durability", Detail: fmt.Sprintf("recovered %d records, want the %d acknowledged", got, n)}}
	}
	if v, ver, ok := s.Get("o"); !ok || ver.Seq != uint64(n) {
		return []Violation{{Oracle: "wal-durability", Detail: fmt.Sprintf("recovered state %v@%v, want seq %d", v, ver, n)}}
	}
	return nil
}

// DigestEvents folds the trace into an FNV-1a digest. Over SimNet the
// trace is bit-deterministic under a seed, so equal digests across
// runs certify determinism and unequal digests localise divergence.
func DigestEvents(events []obs.Event) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, e := range events {
		putU64(uint64(e.T))
		putU64(uint64(e.Node))
		putU64(uint64(e.Kind))
		putU64(uint64(e.Msg.Sender))
		putU64(e.Msg.Seq)
		h.Write([]byte(e.Msg.Label))
		h.Write([]byte(e.Ctx))
		h.Write([]byte(e.Name))
	}
	return h.Sum64()
}

// unavailability computes each node's longest delivery silence: the
// max gap between consecutive application deliveries, with the clock
// starting at the first send in the trace. Returns the worst and mean
// over nodes. A partitioned or crashed node shows its outage here.
func unavailability(events []obs.Event, nodes []int) (max, mean time.Duration) {
	firstSend := time.Duration(-1)
	last := make(map[int]time.Duration)
	gap := make(map[int]time.Duration)
	for _, e := range events {
		switch e.Kind {
		case obs.KSend:
			if firstSend < 0 {
				firstSend = e.T
				for _, n := range nodes {
					last[n] = e.T
				}
			}
		case obs.KDeliver:
			if firstSend < 0 {
				continue
			}
			if g := e.T - last[e.Node]; g > gap[e.Node] {
				gap[e.Node] = g
			}
			last[e.Node] = e.T
		}
	}
	if firstSend < 0 || len(nodes) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, n := range nodes {
		g := gap[n]
		if g > max {
			max = g
		}
		sum += g
	}
	return max, sum / time.Duration(len(nodes))
}

// Shrink minimises a failing episode: greedily remove script ops (and
// finally the background fault mix) while the episode still violates
// an oracle. Returns the minimal config and its result; if cfg does
// not fail, it is returned unchanged. Budgeted at ~200 re-runs.
func Shrink(cfg Config) (Config, Result) {
	res := Run(cfg)
	if len(res.Violations) == 0 {
		return cfg, res
	}
	budget := 200
	for {
		removed := false
		for i := 0; i < len(cfg.Script.Ops) && budget > 0; i++ {
			trial := cfg
			trial.Script.Ops = append(append([]Op{}, cfg.Script.Ops[:i]...), cfg.Script.Ops[i+1:]...)
			budget--
			if r := Run(trial); len(r.Violations) > 0 {
				cfg, res = trial, r
				removed = true
				i--
			}
		}
		if !removed || budget <= 0 {
			break
		}
	}
	if budget > 0 && !cfg.Faults.IsZero() {
		trial := cfg
		trial.Faults = LinkFault{}
		if r := Run(trial); len(r.Violations) > 0 {
			cfg, res = trial, r
		}
	}
	return cfg, res
}

// RunnerConfig parameterises a batch of randomized episodes.
type RunnerConfig struct {
	Substrate string
	N         int
	Senders   int
	MsgsPer   int
	Interval  time.Duration
	Episodes  int
	// Seed is the base seed; episode i runs at Seed + i*1000003.
	Seed int64
	// Gen bounds the random fault schedules. Zero-valued fields are
	// filled from the default mix (1 crash, 1 partition, 2 flaky
	// links, outages up to 250ms).
	Gen GenConfig
	// Faults is the background mix; the zero value means
	// DefaultFaults. Use NoFaults for a clean-network control.
	Faults LinkFault
	// NoFaults disables the background mix entirely.
	NoFaults bool
	// Shrink minimises failing schedules before reporting them.
	Shrink bool
	Degree int
	// Groups / K parameterise mgcast episodes (see Config).
	Groups int
	K      int
	// Budget/Overflow install flow control in every episode; a limited
	// budget arms the bounded-memory oracle.
	Budget   flowcontrol.Budget
	Overflow flowcontrol.Policy
	// DeltaClocks / OrderBatch enable the wire optimizations in every
	// episode (see Config).
	DeltaClocks bool
	OrderBatch  int
}

// Failure is one episode that violated an oracle, with its minimised
// reproduction.
type Failure struct {
	Seed      int64
	Result    Result
	MinConfig Config
	MinResult Result
	// Repro is the one-line command that replays the minimised
	// failure.
	Repro string
}

// Summary aggregates a batch of episodes.
type Summary struct {
	Substrate string
	Episodes  int
	// Digest combines every episode digest; stable across runs of the
	// same RunnerConfig.
	Digest    uint64
	Sent      uint64
	Skipped   uint64
	Delivered uint64
	Faults    FaultStats
	// MaxHoldback / StabHighWater are worst-case over episodes.
	MaxHoldback   int64
	StabHighWater int64
	// UnavailMax is worst-case over episodes; UnavailMean averages the
	// per-episode means.
	UnavailMax  time.Duration
	UnavailMean time.Duration
	Failures    []Failure
}

func (rc *RunnerConfig) fillDefaults() {
	if rc.N == 0 {
		rc.N = 6
	}
	if rc.MsgsPer == 0 {
		rc.MsgsPer = 30
	}
	if rc.Interval == 0 {
		rc.Interval = 5 * time.Millisecond
	}
	if rc.Episodes == 0 {
		rc.Episodes = 20
	}
	if rc.Faults.IsZero() && !rc.NoFaults {
		rc.Faults = DefaultFaults
	}
	g := &rc.Gen
	g.Nodes = rc.N
	if g.Horizon == 0 {
		g.Horizon = time.Duration(rc.MsgsPer) * rc.Interval
	}
	if g.MaxOutage == 0 {
		g.MaxOutage = 250 * time.Millisecond
	}
	if g.Crashes == 0 && g.Partitions == 0 && g.FlakyLinks == 0 {
		g.Crashes, g.Partitions, g.FlakyLinks = 1, 1, 2
	}
	if g.Flaky.IsZero() {
		g.Flaky = LinkFault{DropProb: 0.3, DupProb: 0.2, DelayProb: 0.3, Delay: 20 * time.Millisecond}
	}
	if g.Slows > 0 && g.MaxLag == 0 {
		g.MaxLag = 100 * time.Millisecond
	}
}

// RunEpisodes executes rc.Episodes seeded random-fault episodes and
// aggregates them. Each episode's schedule is generated from its own
// derived seed, so any single episode replays in isolation from just
// (substrate, sizes, seed, script).
func RunEpisodes(rc RunnerConfig) Summary {
	rc.fillDefaults()
	sum := Summary{Substrate: rc.Substrate, Episodes: rc.Episodes}
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < rc.Episodes; i++ {
		seed := rc.Seed + int64(i)*1000003
		script := Gen(rand.New(rand.NewSource(seed^0x6368616f73)), rc.Gen)
		cfg := Config{
			Substrate:   rc.Substrate,
			N:           rc.N,
			Senders:     rc.Senders,
			MsgsPer:     rc.MsgsPer,
			Interval:    rc.Interval,
			Seed:        seed,
			Script:      script,
			Faults:      rc.Faults,
			Degree:      rc.Degree,
			Groups:      rc.Groups,
			K:           rc.K,
			Budget:      rc.Budget,
			Overflow:    rc.Overflow,
			DeltaClocks: rc.DeltaClocks,
			OrderBatch:  rc.OrderBatch,
		}
		res := Run(cfg)
		for b := 0; b < 8; b++ {
			buf[b] = byte(res.Digest >> (8 * b))
		}
		h.Write(buf[:])
		sum.Sent += res.Sent
		sum.Skipped += res.Skipped
		sum.Delivered += res.Delivered
		sum.Faults.Dropped += res.Faults.Dropped
		sum.Faults.Duplicated += res.Faults.Duplicated
		sum.Faults.Delayed += res.Faults.Delayed
		if res.MaxHoldback > sum.MaxHoldback {
			sum.MaxHoldback = res.MaxHoldback
		}
		if res.StabHighWater > sum.StabHighWater {
			sum.StabHighWater = res.StabHighWater
		}
		if res.UnavailMax > sum.UnavailMax {
			sum.UnavailMax = res.UnavailMax
		}
		sum.UnavailMean += res.UnavailMean
		if len(res.Violations) > 0 {
			f := Failure{Seed: seed, Result: res, MinConfig: cfg, MinResult: res}
			if rc.Shrink {
				f.MinConfig, f.MinResult = Shrink(cfg)
			}
			f.Repro = fmt.Sprintf("go run ./cmd/chaos -substrate %s -n %d -senders %d -msgs %d -seed %d -script %q",
				rc.Substrate, rc.N, f.MinConfig.Senders, rc.MsgsPer, seed, f.MinConfig.Script.String())
			if rc.Substrate == "mgcast" {
				f.Repro += fmt.Sprintf(" -groups %d -k %d", f.MinConfig.Groups, f.MinConfig.K)
			}
			if f.MinConfig.DeltaClocks {
				f.Repro += " -delta"
			}
			if f.MinConfig.OrderBatch >= 2 {
				f.Repro += fmt.Sprintf(" -order-batch %d", f.MinConfig.OrderBatch)
			}
			sum.Failures = append(sum.Failures, f)
		}
	}
	sum.Digest = h.Sum64()
	if rc.Episodes > 0 {
		sum.UnavailMean /= time.Duration(rc.Episodes)
	}
	return sum
}

// ViolationCounts tallies a batch's violations by oracle name.
func (s Summary) ViolationCounts() map[string]int {
	counts := make(map[string]int)
	for _, f := range s.Failures {
		for _, v := range f.Result.Violations {
			counts[v.Oracle]++
		}
	}
	return counts
}

// ViolationSummary renders the tally compactly ("none" when clean).
func (s Summary) ViolationSummary() string {
	counts := s.ViolationCounts()
	if len(counts) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s×%d", k, counts[k]))
	}
	return fmt.Sprintf("%v", parts)
}
