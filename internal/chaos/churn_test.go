package chaos

import (
	"math/rand"
	"testing"
	"time"

	"catocs/internal/transport"
)

func TestChurnScriptRoundTrip(t *testing.T) {
	text := "@10ms crash 2; @20ms join 8; @60ms recover 2; @80ms leave 8"
	s, err := ParseScript(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 4 {
		t.Fatalf("parsed %d ops", len(s.Ops))
	}
	if s.Ops[1].Kind != OpJoin || s.Ops[3].Kind != OpLeave {
		t.Fatalf("membership verbs parsed as %v and %v", s.Ops[1].Kind, s.Ops[3].Kind)
	}
	again, err := ParseScript(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if s.String() != again.String() {
		t.Fatalf("round-trip changed script:\n  %s\n  %s", s, again)
	}
}

func TestGenChurnPairedAndStableCore(t *testing.T) {
	cfg := GenChurnConfig{
		Nodes:         8,
		Horizon:       150 * time.Millisecond,
		MaxOutage:     100 * time.Millisecond,
		Crashes:       3,
		Joins:         3,
		Stayers:       1,
		Partitions:    2,
		SafePartition: 20 * time.Millisecond,
		Slows:         2,
		MaxLag:        10 * time.Millisecond,
	}
	s := GenChurn(rand.New(rand.NewSource(42)), cfg)
	if again := GenChurn(rand.New(rand.NewSource(42)), cfg); s.String() != again.String() {
		t.Fatalf("GenChurn not deterministic")
	}

	recoverAt := map[transport.NodeID]time.Duration{}
	leaveAt := map[transport.NodeID]time.Duration{}
	healAts := []time.Duration{}
	fastAt := map[transport.NodeID]time.Duration{}
	for _, op := range s.Ops {
		switch op.Kind {
		case OpRecover:
			recoverAt[op.Node] = op.At
		case OpLeave:
			leaveAt[op.Node] = op.At
		case OpHeal:
			healAts = append(healAts, op.At)
		case OpFast:
			fastAt[op.Node] = op.At
		}
	}
	var joins, leaves, partitions, slows int
	for _, op := range s.Ops {
		switch op.Kind {
		case OpCrash:
			if op.Node < 2 || int(op.Node) >= cfg.Nodes {
				t.Fatalf("crash targets %d, outside the crashable range [2,%d)", op.Node, cfg.Nodes)
			}
			at, ok := recoverAt[op.Node]
			if !ok || at <= op.At {
				t.Fatalf("crash of %d at %s has no later recover", op.Node, op.At)
			}
		case OpJoin:
			joins++
			if int(op.Node) < cfg.Nodes {
				t.Fatalf("join reuses initial id %d", op.Node)
			}
			if at, ok := leaveAt[op.Node]; ok && at <= op.At {
				t.Fatalf("leave of %d at %s precedes its join at %s", op.Node, at, op.At)
			}
		case OpLeave:
			leaves++
		case OpPartition:
			partitions++
			if len(op.Islands) != 2 || len(op.Islands[1]) != 1 {
				t.Fatalf("partition islands %v, want [rest, {one}]", op.Islands)
			}
			if cut := op.Islands[1][0]; cut < 2 || int(cut) >= cfg.Nodes {
				t.Fatalf("partition cuts %d, outside the crashable range [2,%d)", cut, cfg.Nodes)
			}
			// Every cut must heal before the failure detector can fire:
			// there is no partition-merge protocol.
			healed := false
			for _, h := range healAts {
				if h > op.At && h <= op.At+cfg.SafePartition {
					healed = true
				}
			}
			if !healed {
				t.Fatalf("partition at %s has no heal within SafePartition=%s", op.At, cfg.SafePartition)
			}
		case OpSlow:
			slows++
			if op.Node < 2 || int(op.Node) >= cfg.Nodes {
				t.Fatalf("slow targets %d, outside the range [2,%d)", op.Node, cfg.Nodes)
			}
			if op.Lag <= 0 || op.Lag > cfg.MaxLag {
				t.Fatalf("slow lag %s outside (0,%s]", op.Lag, cfg.MaxLag)
			}
			if at, ok := fastAt[op.Node]; !ok || at <= op.At {
				t.Fatalf("slow of %d at %s has no later fast", op.Node, op.At)
			}
		case OpRecover, OpHeal, OpFast: // pairing already checked from the onset side
		default:
			t.Fatalf("GenChurn emitted non-churn op %v", op.Kind)
		}
	}
	if joins != cfg.Joins || leaves != cfg.Joins-cfg.Stayers {
		t.Fatalf("joins=%d leaves=%d, want %d and %d", joins, leaves, cfg.Joins, cfg.Joins-cfg.Stayers)
	}
	if partitions != cfg.Partitions || slows != cfg.Slows {
		t.Fatalf("partitions=%d slows=%d, want %d and %d", partitions, slows, cfg.Partitions, cfg.Slows)
	}
}

// One hand-written episode exercising all four churn ops: a sender
// crashes and recovers through its WAL, a fresh node joins via state
// transfer and stays, a second joiner leaves gracefully.
func churnTestConfig(seed int64) ChurnConfig {
	// Ops spaced wider than the suspect timeout so each drives its own
	// view change; overlapping ops legitimately coalesce into one.
	script, err := ParseScript(
		"@30ms crash 2; @200ms recover 2; @350ms join 8; @450ms join 9; @600ms leave 9")
	if err != nil {
		panic(err)
	}
	return ChurnConfig{N: 6, Seed: seed, Script: script}
}

func TestChurnEpisodeCleanAndDeterministic(t *testing.T) {
	res := RunChurn(churnTestConfig(3))
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	if res.Sent == 0 || res.Skipped == 0 {
		t.Fatalf("sent=%d skipped=%d: the crashed sender should skip some sends", res.Sent, res.Skipped)
	}
	if res.Epochs < 4 {
		t.Fatalf("epochs = %d, want ≥4 (crash, 2 joins, rejoin, leave)", res.Epochs)
	}
	if res.TransferBytes == 0 || res.TransferChunks == 0 {
		t.Fatalf("no state transferred (bytes=%d chunks=%d)", res.TransferBytes, res.TransferChunks)
	}
	if res.FlushMsgs == 0 || res.MetadataPerEpoch() <= 0 {
		t.Fatalf("no membership metadata recorded (flush=%d)", res.FlushMsgs)
	}
	if res.UnavailMax == 0 {
		t.Fatalf("crash produced no availability window")
	}
	if again := RunChurn(churnTestConfig(3)); again.Digest != res.Digest {
		t.Fatalf("same seed produced digests %x and %x", res.Digest, again.Digest)
	}
	if other := RunChurn(churnTestConfig(4)); other.Digest == res.Digest {
		t.Fatalf("different seeds share digest %x", res.Digest)
	}
}

func TestChurnRecoveryReplayAbsorbedAsDups(t *testing.T) {
	// The recovered sender replays its unstable WAL suffix; survivors
	// that already applied those payloads must absorb them as duplicates
	// (paper §4.4: reconciliation is application-level).
	res := RunChurn(churnTestConfig(3))
	if res.Dups == 0 {
		t.Fatalf("recovery replay produced no duplicate applies; at-least-once path untested")
	}
	if res.Applied <= res.Dups {
		t.Fatalf("applied=%d dups=%d: duplicates outnumber first applies", res.Applied, res.Dups)
	}
}

func TestShrinkChurnKeepsCleanEpisode(t *testing.T) {
	cfg := churnTestConfig(3)
	minCfg, minRes := ShrinkChurn(cfg)
	if len(minRes.Violations) > 0 {
		t.Fatalf("shrinking a clean episode invented violations: %+v", minRes.Violations)
	}
	if minCfg.Script.String() != cfg.Script.String() {
		t.Fatalf("shrinking a clean episode changed the script")
	}
}

func TestRunChurnEpisodesCleanBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-episode churn batch")
	}
	sum := RunChurnEpisodes(ChurnRunnerConfig{N: 6, Episodes: 5, Seed: 100})
	if len(sum.Failures) > 0 {
		t.Fatalf("%d failing episodes; first repro: %s", len(sum.Failures), sum.Failures[0].Repro)
	}
	if sum.ViolationSummary() != "none" {
		t.Fatalf("violation summary = %s", sum.ViolationSummary())
	}
	if sum.Epochs == 0 || sum.TransferBytes == 0 {
		t.Fatalf("batch drove no reconfigurations (epochs=%d transfer=%dB)", sum.Epochs, sum.TransferBytes)
	}
	if again := RunChurnEpisodes(ChurnRunnerConfig{N: 6, Episodes: 5, Seed: 100}); again.Digest != sum.Digest {
		t.Fatalf("batch digest not deterministic: %x vs %x", sum.Digest, again.Digest)
	}
}
