package chaos

import (
	"fmt"
	"math/bits"
	"sort"

	"catocs/internal/flowcontrol"
	"catocs/internal/obs"
)

// Violation is one invariant breach found by an oracle.
type Violation struct {
	Oracle string // which invariant
	Detail string // what broke, with enough context to debug
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// msgKey identifies an application message across the trace. Label is
// excluded: the same message keeps (Sender, Seq) at every hop.
type msgKey struct {
	Sender int64
	Seq    uint64
}

func keyOf(r obs.MsgRef) msgKey { return msgKey{Sender: r.Sender, Seq: r.Seq} }

// DeliveryOrders extracts each node's delivery sequence from a trace.
// Only KDeliver events count; the per-node order is the order the
// substrate handed messages to the application.
func DeliveryOrders(events []obs.Event) map[int][]obs.MsgRef {
	orders := make(map[int][]obs.MsgRef)
	for _, e := range events {
		if e.Kind == obs.KDeliver {
			orders[e.Node] = append(orders[e.Node], e.Msg)
		}
	}
	return orders
}

// CheckCausalOrder verifies causal delivery: if send(m1) → send(m2)
// in the potential-causality order, no node delivers m2 before m1.
//
// Causality is reconstructed from the trace itself: each node carries
// a causal past (set of message indices); a KSend snapshots the
// sender's past as the message's dependency set and adds the message
// to it; a KDeliver merges the message and its dependencies into the
// receiver's past. Sets are bitsets — episodes carry a few hundred
// messages at most.
func CheckCausalOrder(events []obs.Event) []Violation {
	// First pass: index application messages by send order.
	idx := make(map[msgKey]int)
	var refs []obs.MsgRef
	for _, e := range events {
		if e.Kind == obs.KSend {
			k := keyOf(e.Msg)
			if _, ok := idx[k]; !ok {
				idx[k] = len(refs)
				refs = append(refs, e.Msg)
			}
		}
	}
	words := (len(refs) + 63) / 64
	newSet := func() []uint64 { return make([]uint64, words) }
	setBit := func(s []uint64, i int) { s[i/64] |= 1 << (uint(i) % 64) }
	orInto := func(dst, src []uint64) {
		for w := range src {
			dst[w] |= src[w]
		}
	}

	deps := make([][]uint64, len(refs)) // deps[i]: messages causally before send of refs[i]
	past := make(map[int][]uint64)      // node → causal past
	nodePast := func(n int) []uint64 {
		p, ok := past[n]
		if !ok {
			p = newSet()
			past[n] = p
		}
		return p
	}
	// Per-node delivery positions for the final check.
	pos := make(map[int]map[int]int) // node → msg index → delivery position
	seq := make(map[int][]int)       // node → delivery sequence of msg indices
	for _, e := range events {
		i, known := idx[keyOf(e.Msg)]
		if !known {
			continue // control traffic
		}
		switch e.Kind {
		case obs.KSend:
			if deps[i] == nil {
				d := newSet()
				copy(d, nodePast(e.Node))
				deps[i] = d
				setBit(nodePast(e.Node), i)
			}
		case obs.KDeliver:
			p := nodePast(e.Node)
			setBit(p, i)
			if deps[i] != nil {
				orInto(p, deps[i])
			}
			if pos[e.Node] == nil {
				pos[e.Node] = make(map[int]int)
			}
			if _, dup := pos[e.Node][i]; !dup {
				pos[e.Node][i] = len(seq[e.Node])
				seq[e.Node] = append(seq[e.Node], i)
			}
		}
	}

	var out []Violation
	nodes := sortedNodes(pos)
	for _, n := range nodes {
		for _, j := range seq[n] {
			if deps[j] == nil {
				continue
			}
			pj := pos[n][j]
			for w, word := range deps[j] {
				for word != 0 {
					i := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					if pi, delivered := pos[n][i]; delivered && pi > pj {
						out = append(out, Violation{
							Oracle: "causal-order",
							Detail: fmt.Sprintf("node %d delivered %v (pos %d) before its causal predecessor %v (pos %d)",
								n, refs[j], pj, refs[i], pi),
						})
					}
				}
			}
		}
	}
	return out
}

// CheckTotalOrder verifies total-order agreement: any two nodes
// deliver their common messages in the same relative order. Applied
// only to substrates that promise a total order (the repo's ABCAST).
func CheckTotalOrder(orders map[int][]obs.MsgRef) []Violation {
	var out []Violation
	nodes := sortedNodes(orders)
	for a := 0; a < len(nodes); a++ {
		for b := a + 1; b < len(nodes); b++ {
			na, nb := nodes[a], nodes[b]
			posB := make(map[msgKey]int, len(orders[nb]))
			for i, r := range orders[nb] {
				posB[keyOf(r)] = i
			}
			lastB := -1
			var lastRef obs.MsgRef
			for _, r := range orders[na] {
				i, common := posB[keyOf(r)]
				if !common {
					continue
				}
				if i < lastB {
					out = append(out, Violation{
						Oracle: "total-order",
						Detail: fmt.Sprintf("nodes %d and %d disagree: %d delivers %v before %v, %d delivers them reversed",
							na, nb, na, lastRef, r, nb),
					})
				}
				if i > lastB {
					lastB, lastRef = i, r
				}
			}
		}
	}
	return out
}

// CheckAcyclicOrder is the cross-group generalisation of
// CheckTotalOrder: build the union of every node's delivery order and
// reject cycles. Within one group the two oracles agree (a pairwise
// disagreement between two nodes is exactly a 2-cycle), but only the
// acyclicity formulation extends to overlapping destination sets,
// where three nodes can each see a consistent pair yet compose into
// m1 < m2 < m3 < m1 — the ordering anomaly genuine multi-group
// multicast exists to prevent.
//
// Each node's order contributes its consecutive-pair edges; a cycle in
// the union of the full (transitive) per-node orders exists iff one
// exists in this edge union, since every per-node precedence is a path
// along that node's consecutive edges.
func CheckAcyclicOrder(orders map[int][]obs.MsgRef) []Violation {
	idx := make(map[msgKey]int)
	var refs []obs.MsgRef
	adj := make(map[int][]int)
	type edge [2]int
	witness := make(map[edge]int) // edge -> a node whose order induced it
	for _, n := range sortedNodes(orders) {
		prev := -1
		seen := make(map[msgKey]bool, len(orders[n]))
		for _, r := range orders[n] {
			k := keyOf(r)
			if seen[k] {
				continue // duplicate delivery; other oracles flag it
			}
			seen[k] = true
			i, ok := idx[k]
			if !ok {
				i = len(refs)
				idx[k] = i
				refs = append(refs, r)
			}
			if prev >= 0 {
				if _, dup := witness[edge{prev, i}]; !dup {
					witness[edge{prev, i}] = n
					adj[prev] = append(adj[prev], i)
				}
			}
			prev = i
		}
	}

	// DFS with gray/black colouring; extract the first cycle found.
	const (
		white = iota
		gray
		black
	)
	color := make([]int, len(refs))
	parent := make([]int, len(refs))
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range adj[u] {
			if color[v] == gray {
				cycle = append(cycle, v)
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := range refs {
		if color[u] == white && dfs(u) {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	// cycle is [v, u, parent(u), ...] — reverse the tail for forward
	// edge direction v -> ... -> u -> v.
	fwd := []int{cycle[0]}
	for i := len(cycle) - 1; i >= 1; i-- {
		fwd = append(fwd, cycle[i])
	}
	detail := "delivery orders form a cycle: "
	for i, u := range fwd {
		if i > 0 {
			detail += fmt.Sprintf(" -> (node %d) ", witness[edge{fwd[i-1], u}])
		}
		detail += fmt.Sprint(refs[u])
	}
	detail += fmt.Sprintf(" -> (node %d) %v", witness[edge{fwd[len(fwd)-1], fwd[0]}], refs[fwd[0]])
	return []Violation{{Oracle: "acyclic-order", Detail: detail}}
}

// CheckDestLiveness verifies destination-restricted liveness and
// genuineness for multi-group multicast: every node in a sent
// message's destination set delivers it, and no node outside the set
// does. dests maps an application message to its destination node set;
// messages it returns nil for are skipped (control traffic, or casts
// whose destinations the caller did not record). faulty carries the
// same all-or-nothing crashed-sender exemption as CheckLiveness.
func CheckDestLiveness(events []obs.Event, dests func(sender int64, seq uint64) []int, faulty []int) []Violation {
	crashed := make(map[int64]bool, len(faulty))
	for _, n := range faulty {
		crashed[int64(n)] = true
	}
	sent := make(map[msgKey]obs.MsgRef)
	got := make(map[msgKey]map[int]bool)
	for _, e := range events {
		switch e.Kind {
		case obs.KSend:
			sent[keyOf(e.Msg)] = e.Msg
		case obs.KDeliver:
			k := keyOf(e.Msg)
			if got[k] == nil {
				got[k] = make(map[int]bool)
			}
			got[k][e.Node] = true
		}
	}
	var out []Violation
	for k, r := range sent {
		want := dests(k.Sender, k.Seq)
		if want == nil {
			continue
		}
		isDest := make(map[int]bool, len(want))
		for _, n := range want {
			isDest[n] = true
		}
		if crashed[k.Sender] && len(got[k]) == 0 {
			continue // all-or-nothing loss at a crashed sender
		}
		for _, n := range want {
			if !got[k][n] {
				out = append(out, Violation{
					Oracle: "dest-liveness",
					Detail: fmt.Sprintf("destination node %d never delivered %v", n, r),
				})
			}
		}
		for n := range got[k] {
			if !isDest[n] {
				out = append(out, Violation{
					Oracle: "dest-liveness",
					Detail: fmt.Sprintf("node %d delivered %v without being a destination", n, r),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Detail < out[j].Detail })
	return out
}

// CheckSameSet verifies delivery-set agreement (the virtual-synchrony
// flavour of atomicity for a static view): every listed node delivers
// exactly the same set of messages.
func CheckSameSet(orders map[int][]obs.MsgRef, nodes []int) []Violation {
	sets := make(map[int]map[msgKey]obs.MsgRef, len(nodes))
	union := make(map[msgKey]obs.MsgRef)
	for _, n := range nodes {
		sets[n] = make(map[msgKey]obs.MsgRef, len(orders[n]))
		for _, r := range orders[n] {
			sets[n][keyOf(r)] = r
			union[keyOf(r)] = r
		}
	}
	var out []Violation
	for _, n := range nodes {
		for k, r := range union {
			if _, ok := sets[n][k]; !ok {
				out = append(out, Violation{
					Oracle: "same-set",
					Detail: fmt.Sprintf("node %d missed %v that another node delivered", n, r),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Detail < out[j].Detail })
	return out
}

// CheckLiveness verifies eventual delivery — the two liveness halves
// of reliable broadcast:
//
//   - validity: a message from a sender that never crashed reaches
//     every listed node;
//   - agreement: a message delivered by ANY node reaches every node.
//
// faulty lists nodes the fault schedule crashed at some point. A
// message from a faulty sender that no node ever delivered is a legal
// all-or-nothing loss: the sender can crash with every copy (loopback
// included) still in flight, and "none" is then the permitted
// outcome. Sound only under the fail-stop discipline the Runner
// enforces (crashed nodes do not originate sends, and every fault in
// the schedule is repaired before the settle window).
func CheckLiveness(events []obs.Event, nodes []int, faulty []int) []Violation {
	crashed := make(map[int64]bool, len(faulty))
	for _, n := range faulty {
		crashed[int64(n)] = true
	}
	sent := make(map[msgKey]obs.MsgRef)
	got := make(map[int]map[msgKey]bool)
	for _, e := range events {
		switch e.Kind {
		case obs.KSend:
			sent[keyOf(e.Msg)] = e.Msg
		case obs.KDeliver:
			if got[e.Node] == nil {
				got[e.Node] = make(map[msgKey]bool)
			}
			got[e.Node][keyOf(e.Msg)] = true
		}
	}
	var out []Violation
	for k, r := range sent {
		if crashed[k.Sender] {
			anywhere := false
			for _, n := range nodes {
				if got[n][k] {
					anywhere = true
					break
				}
			}
			if !anywhere {
				continue // all-or-nothing loss at a crashed sender
			}
		}
		for _, n := range nodes {
			if !got[n][k] {
				out = append(out, Violation{
					Oracle: "liveness",
					Detail: fmt.Sprintf("node %d never delivered %v", n, r),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Detail < out[j].Detail })
	return out
}

// CheckStabilitySafety verifies a message is never reported stable
// before every listed node has delivered it. Events() is sorted by
// simulation time, so "before" is a scan: a KStabilize for m with a
// node still missing KDeliver(m) is a violation. Applied to the
// matrix-clock substrates (atomic CBCAST/ABCAST).
func CheckStabilitySafety(events []obs.Event, nodes []int) []Violation {
	delivered := make(map[msgKey]map[int]bool)
	flagged := make(map[msgKey]bool)
	var out []Violation
	for _, e := range events {
		switch e.Kind {
		case obs.KDeliver:
			k := keyOf(e.Msg)
			if delivered[k] == nil {
				delivered[k] = make(map[int]bool)
			}
			delivered[k][e.Node] = true
		case obs.KStabilize:
			k := keyOf(e.Msg)
			if flagged[k] {
				continue
			}
			for _, n := range nodes {
				if !delivered[k][n] {
					flagged[k] = true
					out = append(out, Violation{
						Oracle: "stability-safety",
						Detail: fmt.Sprintf("node %d marked %v stable at %s but node %d had not delivered it",
							e.Node, e.Msg, e.T, n),
					})
					break
				}
			}
		}
	}
	return out
}

// CheckBoundedMemory verifies the flow-control contract: with a
// limited budget and a policy installed, no member's in-memory
// unstable buffer may exceed the budget at any point in the run — not
// on average, and not transiently, because the §5 failure mode is
// precisely a transient that never ends. The inputs are the episode's
// high-water marks (worst over members and time); with an unlimited
// budget or no policy there is nothing to check and the oracle passes
// vacuously.
func CheckBoundedMemory(maxHoldback, stabHighWater int64, budget flowcontrol.Budget, pol flowcontrol.Policy) []Violation {
	if !budget.Limited() || budget.MaxMsgs <= 0 || pol == flowcontrol.None {
		return nil
	}
	var out []Violation
	limit := int64(budget.MaxMsgs)
	if stabHighWater > limit {
		out = append(out, Violation{
			Oracle: "bounded-memory",
			Detail: fmt.Sprintf("stability buffer high-water %d exceeds budget %d msgs", stabHighWater, limit),
		})
	}
	// The holdback queue holds undeliverable (out-of-order) arrivals.
	// Under the window policies every held message is some sender's
	// outstanding cast, so per-sender admission bounds it by the same
	// group budget. Spill deliberately admits everything — its bound is
	// the in-memory stability occupancy above, not the holdback queue.
	if pol != flowcontrol.Spill && maxHoldback > limit {
		out = append(out, Violation{
			Oracle: "bounded-memory",
			Detail: fmt.Sprintf("holdback high-water %d exceeds budget %d msgs", maxHoldback, limit),
		})
	}
	return out
}

func sortedNodes[V any](m map[int]V) []int {
	nodes := make([]int, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}
