// Command experiments runs the full reproduction suite E1–E21 plus the
// ablations and prints every table. With -md it emits the tables in
// the Markdown layout used by EXPERIMENTS.md. With -net it also runs
// E22, the real-network fleet: unlike everything else here it spawns
// OS processes (cmd/node, cmd/loadgen) and measures wall-clock time,
// so it is opt-in and not seed-deterministic.
//
// Usage:
//
//	experiments [-seed 1] [-quick] [-md] [-net]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"catocs/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "smaller parameterizations (CI-sized)")
	md := flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md layout)")
	netFleet := flag.Bool("net", false, "also run E22: real OS-process fleet over TCP (spawns processes)")
	flag.Parse()

	trials, sizes, msgs := 50, []int{4, 8, 16, 24}, 40
	e8procs := []int{4, 8}
	e16sizes := []int{8, 32, 128, 512}
	e17sizes := []int{8, 32, 128}
	e18episodes, e18n := 50, 6
	e19casts, e19episodes := 150, 100
	e20sizes, e20ks, e20msgs := []int{8, 32, 128}, []int{1, 2, 4, 8}, 20
	e21sizes, e21msgs := []int{8, 32}, 30
	e24sizes := experiments.E24Sizes
	if *quick {
		trials, sizes, msgs = 10, []int{4, 8}, 20
		e8procs = []int{4}
		e16sizes = []int{8, 32}
		e17sizes = []int{8, 32}
		e18episodes, e18n = 5, 5
		e19casts, e19episodes = 60, 10
		e20sizes, e20ks, e20msgs = []int{8, 32}, []int{1, 2}, 8
		e21sizes, e21msgs = []int{8}, 10
		e24sizes = []int{8, 32}
	}

	tables := []*experiments.Table{
		experiments.TableE1(trials),
		experiments.TableE2(trials, *seed),
		experiments.TableE3(trials, *seed+1000),
		experiments.TableE4(trials/2, *seed+2000),
		experiments.TableE5(sizes, msgs, *seed),
		experiments.TableE5Piggyback(sizes, msgs, *seed),
		experiments.TableE5Header([]int{4, 16, 64}, msgs/2, 1_000_000, *seed),
		experiments.TableE6(sizes, msgs, 0.05, *seed),
		experiments.TableE6Partition([]int{1, 2, 3, 4}, 4, msgs, *seed),
		experiments.TableE6Traffic(8, msgs, *seed),
		experiments.TableE7(sizes, *seed),
		experiments.TableE7Join(sizes, *seed),
		experiments.TableE8(e8procs, 100, *seed),
		experiments.TableE9(3, 30, *seed),
		experiments.TableE10([]int{3, 6, 9}, 4, *seed),
		experiments.TableE11(*seed),
		experiments.TableE12([]float64{0, 0.05, 0.15}, *seed),
		experiments.TableE13(sizes, 48, *seed),
		experiments.TableE14([]int{8, 16, 32}, 40, *seed),
		experiments.TableE15([]int{4, 8, 16}, 30, *seed),
		experiments.TableE16(e16sizes, 4, *seed),
		experiments.TableE17(e17sizes, msgs/2, *seed),
		experiments.TableE18(e18episodes, e18n, 30, *seed),
		experiments.TableE19(5, e19casts, e19episodes, *seed),
		experiments.TableE20(e20sizes, e20ks, e20msgs, *seed),
		experiments.TableE21(e21sizes, e21msgs, *seed),
		experiments.TableAblationTotal(sizes, msgs/2, *seed),
		experiments.TableE24(e24sizes, *seed),
	}

	if *netFleet {
		t, err := runE22(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: E22:", err)
			os.Exit(1)
		}
		tables = append(tables, t)
	}

	for _, t := range tables {
		if *md {
			fmt.Println(t.RenderMarkdown())
		} else {
			fmt.Println(t.Render())
		}
	}
}

// runE22 builds the fleet binaries and runs the real-network arms: a
// traced ordering-audit fleet per substrate, then an untraced
// throughput fleet at full client count.
func runE22(quick bool) (*experiments.Table, error) {
	bin, err := os.MkdirTemp("", "catocs-net-bin")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(bin)
	if err := experiments.BuildNetBinaries(bin); err != nil {
		return nil, err
	}
	auditClients, auditRate, auditDur := 5000, 500.0, 4*time.Second
	loadNodes, loadClients, loadRate, loadDur := 5, 100_000, 1200.0, 10*time.Second
	if quick {
		auditClients, auditRate, auditDur = 1000, 300, 1500*time.Millisecond
		loadNodes, loadClients, loadRate, loadDur = 3, 10_000, 1500, 3*time.Second
	}
	var pts []experiments.E22Point
	for _, substrate := range []string{"cbcast", "abcast"} {
		work, err := os.MkdirTemp("", "catocs-net-run")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(work)
		pt, err := experiments.RunE22(experiments.E22Config{
			Substrate: substrate, Nodes: 3, Workers: 1,
			Clients: auditClients, Rate: auditRate, MsgSize: 64,
			Duration: auditDur, Trace: true, BinDir: bin, WorkDir: work,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(os.Stderr, "E22:", pt.JSON())
		pts = append(pts, pt)
	}
	work, err := os.MkdirTemp("", "catocs-net-run")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(work)
	pt, err := experiments.RunE22(experiments.E22Config{
		Substrate: "abcast", Nodes: loadNodes, Workers: 2,
		Clients: loadClients, Rate: loadRate, MsgSize: 64,
		Duration: loadDur, BinDir: bin, WorkDir: work,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(os.Stderr, "E22:", pt.JSON())
	pts = append(pts, pt)
	return experiments.TableE22From(pts), nil
}
