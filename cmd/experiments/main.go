// Command experiments runs the full reproduction suite E1–E21 plus the
// ablations and prints every table. With -md it emits the tables in
// the Markdown layout used by EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-seed 1] [-quick] [-md]
package main

import (
	"flag"
	"fmt"

	"catocs/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "smaller parameterizations (CI-sized)")
	md := flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md layout)")
	flag.Parse()

	trials, sizes, msgs := 50, []int{4, 8, 16, 24}, 40
	e8procs := []int{4, 8}
	e16sizes := []int{8, 32, 128, 512}
	e17sizes := []int{8, 32, 128}
	e18episodes, e18n := 50, 6
	e19casts, e19episodes := 150, 100
	e20sizes, e20ks, e20msgs := []int{8, 32, 128}, []int{1, 2, 4, 8}, 20
	e21sizes, e21msgs := []int{8, 32}, 30
	if *quick {
		trials, sizes, msgs = 10, []int{4, 8}, 20
		e8procs = []int{4}
		e16sizes = []int{8, 32}
		e17sizes = []int{8, 32}
		e18episodes, e18n = 5, 5
		e19casts, e19episodes = 60, 10
		e20sizes, e20ks, e20msgs = []int{8, 32}, []int{1, 2}, 8
		e21sizes, e21msgs = []int{8}, 10
	}

	tables := []*experiments.Table{
		experiments.TableE1(trials),
		experiments.TableE2(trials, *seed),
		experiments.TableE3(trials, *seed+1000),
		experiments.TableE4(trials/2, *seed+2000),
		experiments.TableE5(sizes, msgs, *seed),
		experiments.TableE5Piggyback(sizes, msgs, *seed),
		experiments.TableE5Header([]int{4, 16, 64}, msgs/2, 1_000_000, *seed),
		experiments.TableE6(sizes, msgs, 0.05, *seed),
		experiments.TableE6Partition([]int{1, 2, 3, 4}, 4, msgs, *seed),
		experiments.TableE6Traffic(8, msgs, *seed),
		experiments.TableE7(sizes, *seed),
		experiments.TableE7Join(sizes, *seed),
		experiments.TableE8(e8procs, 100, *seed),
		experiments.TableE9(3, 30, *seed),
		experiments.TableE10([]int{3, 6, 9}, 4, *seed),
		experiments.TableE11(*seed),
		experiments.TableE12([]float64{0, 0.05, 0.15}, *seed),
		experiments.TableE13(sizes, 48, *seed),
		experiments.TableE14([]int{8, 16, 32}, 40, *seed),
		experiments.TableE15([]int{4, 8, 16}, 30, *seed),
		experiments.TableE16(e16sizes, 4, *seed),
		experiments.TableE17(e17sizes, msgs/2, *seed),
		experiments.TableE18(e18episodes, e18n, 30, *seed),
		experiments.TableE19(5, e19casts, e19episodes, *seed),
		experiments.TableE20(e20sizes, e20ks, e20msgs, *seed),
		experiments.TableE21(e21sizes, e21msgs, *seed),
		experiments.TableAblationTotal(sizes, msgs/2, *seed),
	}

	for _, t := range tables {
		if *md {
			fmt.Println(t.RenderMarkdown())
		} else {
			fmt.Println(t.Render())
		}
	}
}
