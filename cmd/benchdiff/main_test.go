package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const oldSnap = `{"kind":"gobench","name":"Steady","iters":1,"ns_per_op":1000,"bytes_per_op":64,"allocs_per_op":2}
{"kind":"gobench","name":"Faster","iters":1,"ns_per_op":2000}
{"kind":"gobench","name":"Slower","iters":1,"ns_per_op":1000}
{"kind":"gobench","name":"Gone","iters":1,"ns_per_op":5}
{"kind":"scalecast","size":8,"ctrl_bytes":123}
{"kind":"loadgen","substrate":"abcast","nodes":3,"target_rate":1000,"msgs_per_sec":990}
`

const newSnap = `{"kind":"header","commit":"abc1234","generated_utc":"2026-08-08T00:00:00Z"}
{"kind":"gobench","name":"Steady","iters":1,"ns_per_op":1050,"bytes_per_op":64,"allocs_per_op":2}
{"kind":"gobench","name":"Faster","iters":1,"ns_per_op":1500}
{"kind":"gobench","name":"Slower","iters":1,"ns_per_op":1500}
{"kind":"gobench","name":"Added","iters":1,"ns_per_op":7}
{"kind":"scalecast","size":8,"ctrl_bytes":125}
{"kind":"loadgen","substrate":"abcast","nodes":3,"target_rate":8000,"msgs_per_sec":3300}
{"kind":"loadgen","substrate":"cbcast","nodes":3,"target_rate":8000,"msgs_per_sec":4100}
`

func TestDiffReportsDeltasAndRegressions(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", oldSnap)
	newP := write(t, dir, "new.json", newSnap)
	var sb strings.Builder
	failed, err := run(&sb, []string{oldP, newP}, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Slower grew 50% > 20% threshold: must fail and be marked.
	if !failed {
		t.Fatalf("expected regression failure; output:\n%s", out)
	}
	for _, want := range []string{
		"Slower", "REGRESSION",
		"1000->1050 ns/op (+5.0%)",  // Steady delta
		"2000->1500 ns/op (-25.0%)", // Faster improvement, not a failure
		"Added", "removed",          // membership changes reported
		"commit=abc1234", // header provenance surfaced
		"sweep lines not compared",
		"loadgen abcast", "990 -> 3300 msgs/s", // fleet throughput one-liner
		"loadgen cbcast", "(new)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	// Allocation regressions gate independently of wall clock: ns/op is
	// flat here but allocs/op went 2 -> 4 (and Zero 0 -> 1).
	dir := t.TempDir()
	oldP := write(t, dir, "old.json",
		`{"kind":"gobench","name":"Steady","iters":1,"ns_per_op":1000,"bytes_per_op":64,"allocs_per_op":2}
{"kind":"gobench","name":"Zero","iters":1,"ns_per_op":50,"allocs_per_op":0}
`)
	newP := write(t, dir, "new.json",
		`{"kind":"gobench","name":"Steady","iters":1,"ns_per_op":1000,"bytes_per_op":64,"allocs_per_op":4}
{"kind":"gobench","name":"Zero","iters":1,"ns_per_op":50,"allocs_per_op":1}
`)
	var sb strings.Builder
	failed, err := run(&sb, []string{oldP, newP}, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("allocs/op doubled but diff passed:\n%s", sb.String())
	}
	if got := strings.Count(sb.String(), "ALLOC-REGRESSION"); got != 2 {
		t.Fatalf("want 2 ALLOC-REGRESSION marks (pct growth and zero->nonzero), got %d:\n%s", got, sb.String())
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", oldSnap)
	newP := write(t, dir, "new.json", newSnap)
	var sb strings.Builder
	failed, err := run(&sb, []string{oldP, newP}, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("no benchmark regressed more than 60%%, but diff failed:\n%s", sb.String())
	}
}

func TestLatestPairPicksTwoHighest(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json", "BENCH_notnum.json"} {
		write(t, dir, n, "")
	}
	older, newer, err := latestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if older != "BENCH_2.json" || newer != "BENCH_10.json" {
		t.Fatalf("latestPair = (%s, %s), want (BENCH_2.json, BENCH_10.json)", older, newer)
	}
}

func TestLatestPairNeedsTwo(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_1.json", "")
	if _, _, err := latestPair(dir); err == nil {
		t.Fatal("expected error with a single snapshot")
	}
}

func TestHeaderlessOldSnapshot(t *testing.T) {
	// BENCH_1.json predates benchsnap -header; the diff must tolerate a
	// headerless old side silently.
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", `{"kind":"gobench","name":"X","iters":1,"ns_per_op":10}`+"\n")
	newP := write(t, dir, "new.json", newSnap)
	var sb strings.Builder
	if _, err := run(&sb, []string{oldP, newP}, 20, 20); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "old.json: commit=") {
		t.Fatalf("headerless snapshot should print no provenance line:\n%s", sb.String())
	}
}

func TestBadArgCount(t *testing.T) {
	var sb strings.Builder
	if _, err := run(&sb, []string{"one.json"}, 20, 20); err == nil {
		t.Fatal("expected usage error with one positional arg")
	}
}
