// Command benchdiff compares two BENCH_<n>.json snapshots (see `make
// bench` and cmd/benchsnap) and reports per-benchmark deltas: ns/op,
// B/op, allocs/op, plus benchmarks added or removed. It is the
// regression gate for the bench trajectory: with -threshold t (percent),
// any benchmark whose ns/op grew by more than t fails the diff, and
// with -alloc-threshold a, any whose allocs/op grew by more than a (or
// from zero to nonzero — allocation counts are deterministic, so that
// gate stays meaningful at -benchtime=1x). Either failure exits
// nonzero. Fleet loadgen records (cmd/netbench) are summarized as one
// msgs/s line per substrate.
//
//	benchdiff                    # latest two BENCH_<n>.json in cwd
//	benchdiff OLD.json NEW.json  # explicit pair
//	benchdiff -threshold 10 -alloc-threshold 10 ...
//
// Snapshots are JSON lines. Lines with "kind":"gobench" are compared
// by benchmark name; "header" lines (benchsnap -header) are shown for
// provenance and otherwise ignored; other kinds (scalecast, latbreak,
// mgcast sweeps) are counted but not compared — their numbers are
// virtual-time simulation results that a plain `diff` already handles,
// since regenerating them from fixed seeds is deterministic.
//
// Caveat for gating: `make bench` records Go benchmarks at
// -benchtime=1x, so wall-clock fields carry single-iteration noise.
// `make verify` therefore runs the diff warn-only by default and only
// fails the build when BENCHDIFF_STRICT=1 is set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine is one snapshot line; only the fields benchdiff compares.
type benchLine struct {
	Kind     string   `json:"kind"`
	Name     string   `json:"name"`
	NsPerOp  float64  `json:"ns_per_op"`
	BPerOp   *float64 `json:"bytes_per_op"`
	AllocsOp *float64 `json:"allocs_per_op"`
	// Loadgen summary fields (cmd/netbench fleet runs).
	Substrate  string  `json:"substrate"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	TargetRate float64 `json:"target_rate"`
	Nodes      int     `json:"nodes"`
	// Header provenance (benchsnap -header).
	Commit    string `json:"commit"`
	Generated string `json:"generated_utc"`
}

// snapshot is one parsed BENCH_<n>.json.
type snapshot struct {
	path    string
	header  *benchLine           // nil for headerless snapshots
	bench   map[string]benchLine // gobench lines by name
	loadgen map[string]benchLine // loadgen lines by substrate (last wins)
	other   int                  // lines of non-compared kinds
}

func loadSnapshot(path string) (*snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := &snapshot{path: path, bench: make(map[string]benchLine), loadgen: make(map[string]benchLine)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l benchLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		switch l.Kind {
		case "gobench":
			s.bench[l.Name] = l
		case "loadgen":
			s.loadgen[l.Substrate] = l
		case "header":
			h := l
			s.header = &h
		default:
			s.other++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// latestPair finds the two highest-numbered BENCH_<n>.json in dir:
// (previous, latest).
func latestPair(dir string) (older, newer string, err error) {
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	var ns []int
	for _, e := range entries {
		if m := re.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			ns = append(ns, n)
		}
	}
	if len(ns) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_<n>.json in %s, found %d", dir, len(ns))
	}
	sort.Ints(ns)
	return fmt.Sprintf("BENCH_%d.json", ns[len(ns)-2]),
		fmt.Sprintf("BENCH_%d.json", ns[len(ns)-1]), nil
}

// pct returns the percent change from old to new; ok is false when old
// is zero (no meaningful ratio).
func pct(oldV, newV float64) (float64, bool) {
	if oldV == 0 {
		return 0, false
	}
	return (newV - oldV) / oldV * 100, true
}

func fmtDelta(oldV, newV float64, unit string) string {
	d, ok := pct(oldV, newV)
	if !ok {
		return fmt.Sprintf("%.0f->%.0f %s", oldV, newV, unit)
	}
	return fmt.Sprintf("%.0f->%.0f %s (%+.1f%%)", oldV, newV, unit, d)
}

// diff compares two snapshots, writing a report to w. It returns the
// names of benchmarks whose ns/op regressed by more than threshold
// percent or whose allocs/op regressed by more than allocThreshold
// percent.
func diff(w io.Writer, oldS, newS *snapshot, threshold, allocThreshold float64) []string {
	for _, s := range []*snapshot{oldS, newS} {
		if s.header != nil {
			fmt.Fprintf(w, "%s: commit=%s generated=%s\n", s.path, s.header.Commit, s.header.Generated)
		}
	}
	names := make([]string, 0, len(oldS.bench))
	for name := range oldS.bench {
		if _, ok := newS.bench[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		o, n := oldS.bench[name], newS.bench[name]
		line := fmt.Sprintf("%-52s %s", name, fmtDelta(o.NsPerOp, n.NsPerOp, "ns/op"))
		if o.BPerOp != nil && n.BPerOp != nil {
			line += "  " + fmtDelta(*o.BPerOp, *n.BPerOp, "B/op")
		}
		if o.AllocsOp != nil && n.AllocsOp != nil {
			line += "  " + fmtDelta(*o.AllocsOp, *n.AllocsOp, "allocs/op")
		}
		regressed := false
		if d, ok := pct(o.NsPerOp, n.NsPerOp); ok && d > threshold {
			line += "  REGRESSION"
			regressed = true
		}
		if o.AllocsOp != nil && n.AllocsOp != nil {
			// Allocation counts are deterministic even at -benchtime=1x, so
			// this gate is meaningful where the wall-clock one is noisy.
			if d, ok := pct(*o.AllocsOp, *n.AllocsOp); ok && d > allocThreshold {
				line += "  ALLOC-REGRESSION"
				regressed = true
			} else if *o.AllocsOp == 0 && *n.AllocsOp > 0 {
				line += "  ALLOC-REGRESSION"
				regressed = true
			}
		}
		if regressed {
			regressions = append(regressions, name)
		}
		fmt.Fprintln(w, line)
	}
	var added, removed []string
	for name := range newS.bench {
		if _, ok := oldS.bench[name]; !ok {
			added = append(added, name)
		}
	}
	for name := range oldS.bench {
		if _, ok := newS.bench[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	for _, name := range added {
		fmt.Fprintf(w, "%-52s added (%.0f ns/op)\n", name, newS.bench[name].NsPerOp)
	}
	for _, name := range removed {
		fmt.Fprintf(w, "%-52s removed\n", name)
	}
	// One-line throughput summary per fleet substrate (cmd/netbench
	// loadgen records): the msgs/s number the fleet acceptance bars are
	// stated in, without digging through the JSON.
	var subs []string
	for sub := range newS.loadgen {
		subs = append(subs, sub)
	}
	sort.Strings(subs)
	for _, sub := range subs {
		n := newS.loadgen[sub]
		if o, ok := oldS.loadgen[sub]; ok {
			line := fmt.Sprintf("loadgen %-10s %.0f -> %.0f msgs/s", sub, o.MsgsPerSec, n.MsgsPerSec)
			if d, ok := pct(o.MsgsPerSec, n.MsgsPerSec); ok {
				line += fmt.Sprintf(" (%+.1f%%)", d)
			}
			fmt.Fprintf(w, "%s  (n=%d, offered %.0f/s)\n", line, n.Nodes, n.TargetRate)
		} else {
			fmt.Fprintf(w, "loadgen %-10s %.0f msgs/s (new)  (n=%d, offered %.0f/s)\n",
				sub, n.MsgsPerSec, n.Nodes, n.TargetRate)
		}
	}
	fmt.Fprintf(w, "compared %d benchmarks (+%d added, -%d removed, %d sweep lines not compared)\n",
		len(names), len(added), len(removed), oldS.other+newS.other)
	if len(regressions) > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed more than %.1f%% in ns/op or %.1f%% in allocs/op: %v\n",
			len(regressions), threshold, allocThreshold, regressions)
	}
	return regressions
}

func run(w io.Writer, args []string, threshold, allocThreshold float64) (failed bool, err error) {
	var oldPath, newPath string
	switch len(args) {
	case 0:
		oldPath, newPath, err = latestPair(".")
		if err != nil {
			return false, err
		}
	case 2:
		oldPath, newPath = args[0], args[1]
	default:
		return false, fmt.Errorf("usage: benchdiff [flags] [OLD.json NEW.json]")
	}
	oldS, err := loadSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newS, err := loadSnapshot(newPath)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "benchdiff %s -> %s\n", oldPath, newPath)
	return len(diff(w, oldS, newS, threshold, allocThreshold)) > 0, nil
}

func main() {
	threshold := flag.Float64("threshold", 20, "max allowed ns/op regression in percent before exiting nonzero")
	allocThreshold := flag.Float64("alloc-threshold", 20, "max allowed allocs/op regression in percent before exiting nonzero")
	flag.Parse()
	failed, err := run(os.Stdout, flag.Args(), *threshold, *allocThreshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
