// Command chaos runs seeded fault-injection episodes against the
// ordered-broadcast substrates and checks the invariants each one
// advertises. Two modes:
//
// Randomized batch (default): N seeded episodes per substrate, each
// with a generated crash/partition/flaky-link schedule on top of a
// background drop/dup/delay mix. Any violation is shrunk to a minimal
// fault script and reported with a one-line reproduction command.
//
//	go run ./cmd/chaos -substrate scalecast -seed 42 -episodes 50
//
// Scripted episode (-script): one episode with an explicit fault
// schedule — the replay side of the reproduction line above.
//
//	go run ./cmd/chaos -substrate cbcast -seed 5 \
//	    -script "@30ms part 0,1,2|3; @230ms heal"
//
// Exit status is 1 if any oracle found a violation, so the command
// slots into CI (make chaos-smoke).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"catocs/internal/chaos"
	"catocs/internal/flowcontrol"
	"catocs/internal/obs/live"
)

func main() {
	var (
		substrate  = flag.String("substrate", "all", "cbcast | abcast | scalecast | mgcast | all")
		n          = flag.Int("n", 6, "group size")
		senders    = flag.Int("senders", 0, "sending ranks (0 = min(n, 4))")
		msgs       = flag.Int("msgs", 30, "messages per sender")
		episodes   = flag.Int("episodes", 20, "episodes per substrate (batch mode)")
		seed       = flag.Int64("seed", 1, "base seed")
		script     = flag.String("script", "", "explicit fault schedule (single-episode mode)")
		crashes    = flag.Int("crashes", 1, "crash/recover pairs per generated schedule")
		partitions = flag.Int("partitions", 1, "partition/heal pairs per generated schedule")
		flaky      = flag.Int("flaky", 2, "flaky-link windows per generated schedule")
		slows      = flag.Int("slows", 0, "slow-consumer windows per generated schedule")
		maxLag     = flag.Duration("max-lag", 0, "max inbound lag for generated slow windows (0 = 100ms)")
		budget     = flag.Int("budget", 0, "group buffer budget in messages (0 = unlimited)")
		policy     = flag.String("policy", "", "overflow policy with -budget: block | shed | spill")
		clean      = flag.Bool("clean", false, "disable the background drop/dup/delay mix")
		noShrink   = flag.Bool("no-shrink", false, "report failures without minimising them")
		groups     = flag.Int("groups", 0, "mgcast: overlapping destination groups (0 = 4)")
		k          = flag.Int("k", 0, "mgcast: destination groups per cast (0 = 2)")
		delta      = flag.Bool("delta", false, "cbcast/abcast: delta-encoded vector-clock stamps")
		orderBatch = flag.Int("order-batch", 0, "abcast: sequencer ordering-announcement batch size (<2 = unbatched)")
		profile    = flag.String("profile", "", `write a pprof profile of the run: "cpu" or "heap" (to cpu.pprof / heap.pprof)`)
	)
	flag.Parse()

	stopProfile := func() error { return nil }
	if *profile != "" {
		stop, err := live.StartProfile(*profile, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		stopProfile = stop
	}

	var (
		fcBudget flowcontrol.Budget
		fcPolicy flowcontrol.Policy
	)
	if *budget > 0 {
		fcBudget = flowcontrol.Budget{MaxMsgs: *budget}
		var err error
		if fcPolicy, err = flowcontrol.ParsePolicy(*policy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	subs := chaos.Substrates
	if *substrate != "all" {
		subs = []string{*substrate}
	}

	failed := false
	if *script != "" {
		s, err := chaos.ParseScript(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, sub := range subs {
			cfg := chaos.Config{
				Substrate: sub, N: *n, Senders: *senders, MsgsPer: *msgs,
				Seed: *seed, Script: s,
				Groups: *groups, K: *k,
				Budget: fcBudget, Overflow: fcPolicy,
				DeltaClocks: *delta, OrderBatch: *orderBatch,
			}
			if !*clean {
				cfg.Faults = chaos.DefaultFaults
			}
			res := chaos.Run(cfg)
			printResult(res)
			if len(res.Violations) > 0 {
				failed = true
			}
		}
	} else {
		for _, sub := range subs {
			rc := chaos.RunnerConfig{
				Substrate: sub, N: *n, Senders: *senders, MsgsPer: *msgs,
				Episodes: *episodes, Seed: *seed,
				NoFaults: *clean, Shrink: !*noShrink,
				Groups: *groups, K: *k,
				Budget: fcBudget, Overflow: fcPolicy,
				DeltaClocks: *delta, OrderBatch: *orderBatch,
			}
			rc.Gen.Crashes = *crashes
			rc.Gen.Partitions = *partitions
			rc.Gen.FlakyLinks = *flaky
			rc.Gen.Slows = *slows
			rc.Gen.MaxLag = *maxLag
			sum := chaos.RunEpisodes(rc)
			printSummary(sum)
			if len(sum.Failures) > 0 {
				failed = true
			}
		}
	}
	// Finish the profile before the violation exit: a failing batch is
	// exactly the run worth profiling.
	if err := stopProfile(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if failed {
		os.Exit(1)
	}
}

func printResult(r chaos.Result) {
	fmt.Printf("%-10s seed=%-6d digest=%016x sent=%d skipped=%d delivered=%d "+
		"faults(drop=%d dup=%d delay=%d) holdback-max=%d stab-hw=%d unavail(max=%s mean=%s)\n",
		r.Substrate, r.Seed, r.Digest, r.Sent, r.Skipped, r.Delivered,
		r.Faults.Dropped, r.Faults.Duplicated, r.Faults.Delayed,
		r.MaxHoldback, r.StabHighWater, round(r.UnavailMax), round(r.UnavailMean))
	if len(r.Script.Ops) > 0 {
		fmt.Printf("  script: %s\n", r.Script)
	}
	for _, v := range r.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	if len(r.Violations) == 0 {
		fmt.Println("  all oracles passed")
	}
}

func printSummary(s chaos.Summary) {
	fmt.Printf("%-10s episodes=%-3d digest=%016x sent=%d skipped=%d delivered=%d "+
		"faults(drop=%d dup=%d delay=%d) holdback-max=%d stab-hw=%d unavail(max=%s mean=%s) violations=%s\n",
		s.Substrate, s.Episodes, s.Digest, s.Sent, s.Skipped, s.Delivered,
		s.Faults.Dropped, s.Faults.Duplicated, s.Faults.Delayed,
		s.MaxHoldback, s.StabHighWater, round(s.UnavailMax), round(s.UnavailMean),
		s.ViolationSummary())
	for _, f := range s.Failures {
		fmt.Printf("  FAILING EPISODE seed=%d\n", f.Seed)
		for _, v := range f.Result.Violations {
			fmt.Printf("    %s\n", v)
		}
		fmt.Printf("    minimal script: %s\n", f.MinConfig.Script)
		fmt.Printf("    reproduce: %s\n", f.Repro)
	}
}

func round(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
