// Command chaos runs seeded fault-injection episodes against the
// ordered-broadcast substrates and checks the invariants each one
// advertises. Two modes:
//
// Randomized batch (default): N seeded episodes per substrate, each
// with a generated crash/partition/flaky-link schedule on top of a
// background drop/dup/delay mix. Any violation is shrunk to a minimal
// fault script and reported with a one-line reproduction command.
//
//	go run ./cmd/chaos -substrate scalecast -seed 42 -episodes 50
//
// Scripted episode (-script): one episode with an explicit fault
// schedule — the replay side of the reproduction line above.
//
//	go run ./cmd/chaos -substrate cbcast -seed 5 \
//	    -script "@30ms part 0,1,2|3; @230ms heal"
//
// Churn mode (-churn): seeded dynamic-membership episodes over the
// full membership stack — joiner state transfer, WAL crash-recovery
// rejoin, graceful leave — checked by the churn oracles (joiner-state
// equivalence, no-stale-epoch delivery, rejoin liveness). Generated
// schedules mix membership churn with network faults: short
// sub-detection partitions and inbound-lag slow windows ride alongside
// the crash/join pairs. -churn-rate scales how many of each a schedule
// carries; -recover=false drops the recover half of each crash pair
// (crashed members stay down, exercising pure shrinkage).
// With -script, runs that one churn schedule instead.
//
//	go run ./cmd/chaos -churn -n 32 -episodes 100 -seed 7
//	go run ./cmd/chaos -churn -seed 3 \
//	    -script "@30ms crash 2; @200ms recover 2; @350ms join 8"
//
// Exit status is 1 if any oracle found a violation, so the command
// slots into CI (make chaos-smoke, make churn-smoke).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"catocs/internal/chaos"
	"catocs/internal/flowcontrol"
	"catocs/internal/obs/live"
)

func main() {
	var (
		substrate  = flag.String("substrate", "all", "cbcast | abcast | scalecast | mgcast | all")
		n          = flag.Int("n", 6, "group size")
		senders    = flag.Int("senders", 0, "sending ranks (0 = min(n, 4))")
		msgs       = flag.Int("msgs", 30, "messages per sender")
		episodes   = flag.Int("episodes", 20, "episodes per substrate (batch mode)")
		seed       = flag.Int64("seed", 1, "base seed")
		script     = flag.String("script", "", "explicit fault schedule (single-episode mode)")
		crashes    = flag.Int("crashes", 1, "crash/recover pairs per generated schedule")
		partitions = flag.Int("partitions", 1, "partition/heal pairs per generated schedule")
		flaky      = flag.Int("flaky", 2, "flaky-link windows per generated schedule")
		slows      = flag.Int("slows", 0, "slow-consumer windows per generated schedule")
		maxLag     = flag.Duration("max-lag", 0, "max inbound lag for generated slow windows (0 = 100ms)")
		budget     = flag.Int("budget", 0, "group buffer budget in messages (0 = unlimited)")
		policy     = flag.String("policy", "", "overflow policy with -budget: block | shed | spill")
		clean      = flag.Bool("clean", false, "disable the background drop/dup/delay mix")
		noShrink   = flag.Bool("no-shrink", false, "report failures without minimising them")
		groups     = flag.Int("groups", 0, "mgcast: overlapping destination groups (0 = 4)")
		k          = flag.Int("k", 0, "mgcast: destination groups per cast (0 = 2)")
		delta      = flag.Bool("delta", false, "cbcast/abcast: delta-encoded vector-clock stamps")
		orderBatch = flag.Int("order-batch", 0, "abcast: sequencer ordering-announcement batch size (<2 = unbatched)")
		profile    = flag.String("profile", "", `write a pprof profile of the run: "cpu" or "heap" (to cpu.pprof / heap.pprof)`)
		churn      = flag.Bool("churn", false, "dynamic-membership mode: join/leave/crash/recover episodes on the membership stack")
		churnRate  = flag.Float64("churn-rate", 1.0, "churn mode: scales crash→recover and join→leave pairs plus partition/slow windows per generated schedule (1.0 = 2+2+1+1)")
		doRecover  = flag.Bool("recover", true, "churn mode: false strips the recover half of crash pairs (crashed members stay down)")
	)
	flag.Parse()

	stopProfile := func() error { return nil }
	if *profile != "" {
		stop, err := live.StartProfile(*profile, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		stopProfile = stop
	}

	var (
		fcBudget flowcontrol.Budget
		fcPolicy flowcontrol.Policy
	)
	if *budget > 0 {
		fcBudget = flowcontrol.Budget{MaxMsgs: *budget}
		var err error
		if fcPolicy, err = flowcontrol.ParsePolicy(*policy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	subs := chaos.Substrates
	if *substrate != "all" {
		subs = []string{*substrate}
	}

	failed := false
	if *churn {
		failed = runChurn(*n, *senders, *msgs, *episodes, *seed, *script, *churnRate, *doRecover, !*noShrink)
	} else if *script != "" {
		s, err := chaos.ParseScript(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, sub := range subs {
			cfg := chaos.Config{
				Substrate: sub, N: *n, Senders: *senders, MsgsPer: *msgs,
				Seed: *seed, Script: s,
				Groups: *groups, K: *k,
				Budget: fcBudget, Overflow: fcPolicy,
				DeltaClocks: *delta, OrderBatch: *orderBatch,
			}
			if !*clean {
				cfg.Faults = chaos.DefaultFaults
			}
			res := chaos.Run(cfg)
			printResult(res)
			if len(res.Violations) > 0 {
				failed = true
			}
		}
	} else {
		for _, sub := range subs {
			rc := chaos.RunnerConfig{
				Substrate: sub, N: *n, Senders: *senders, MsgsPer: *msgs,
				Episodes: *episodes, Seed: *seed,
				NoFaults: *clean, Shrink: !*noShrink,
				Groups: *groups, K: *k,
				Budget: fcBudget, Overflow: fcPolicy,
				DeltaClocks: *delta, OrderBatch: *orderBatch,
			}
			rc.Gen.Crashes = *crashes
			rc.Gen.Partitions = *partitions
			rc.Gen.FlakyLinks = *flaky
			rc.Gen.Slows = *slows
			rc.Gen.MaxLag = *maxLag
			sum := chaos.RunEpisodes(rc)
			printSummary(sum)
			if len(sum.Failures) > 0 {
				failed = true
			}
		}
	}
	// Finish the profile before the violation exit: a failing batch is
	// exactly the run worth profiling.
	if err := stopProfile(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if failed {
		os.Exit(1)
	}
}

// runChurn executes churn mode: one scripted episode when script is
// non-empty, otherwise a seeded batch of generated schedules. Returns
// whether any oracle found a violation.
func runChurn(n, senders, msgs, episodes int, seed int64, script string, rate float64, doRecover, shrink bool) bool {
	if script != "" {
		s, err := chaos.ParseScript(script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res := chaos.RunChurn(chaos.ChurnConfig{
			N: n, Senders: senders, MsgsPer: msgs, Seed: seed, Script: s,
		})
		printChurnResult(res)
		return len(res.Violations) > 0
	}
	rc := chaos.ChurnRunnerConfig{
		N: n, Senders: senders, MsgsPer: msgs,
		Episodes: episodes, Seed: seed, Shrink: shrink,
		NoRecover: !doRecover,
	}
	// rate scales the default 2 crash + 2 join (1 staying) mix plus a
	// sub-detection partition and an inbound-lag window per episode;
	// the stable two-node core bounds how much of the group may churn.
	rc.Gen.Crashes = int(rate*2 + 0.5)
	rc.Gen.Joins = int(rate*2 + 0.5)
	rc.Gen.Stayers = (rc.Gen.Joins + 1) / 2
	rc.Gen.Partitions = int(rate + 0.5)
	rc.Gen.Slows = int(rate + 0.5)
	if rc.Gen.Crashes > n-2 {
		rc.Gen.Crashes = n - 2
	}
	sum := chaos.RunChurnEpisodes(rc)
	printChurnSummary(sum)
	return len(sum.Failures) > 0
}

func printChurnResult(r chaos.ChurnResult) {
	fmt.Printf("churn      seed=%-6d digest=%016x sent=%d skipped=%d applied=%d dups=%d "+
		"reconfigs=%d meta/reconfig=%.1f transfer=%dB unavail(max=%s mean=%s)\n",
		r.Seed, r.Digest, r.Sent, r.Skipped, r.Applied, r.Dups,
		r.Epochs, r.MetadataPerEpoch(), r.TransferBytes, round(r.UnavailMax), round(r.UnavailMean))
	if len(r.Script.Ops) > 0 {
		fmt.Printf("  script: %s\n", r.Script)
	}
	for _, v := range r.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	if len(r.Violations) == 0 {
		fmt.Println("  all churn oracles passed")
	}
}

func printChurnSummary(s chaos.ChurnSummary) {
	fmt.Printf("churn      episodes=%-3d digest=%016x sent=%d skipped=%d applied=%d dups=%d "+
		"reconfigs=%d meta/reconfig=%.1f transfer=%dB unavail(max=%s mean=%s) violations=%s\n",
		s.Episodes, s.Digest, s.Sent, s.Skipped, s.Applied, s.Dups,
		s.Epochs, s.MetadataPerEpoch(), s.TransferBytes, round(s.UnavailMax), round(s.UnavailMean),
		s.ViolationSummary())
	for _, f := range s.Failures {
		fmt.Printf("  FAILING EPISODE seed=%d\n", f.Seed)
		for _, v := range f.Result.Violations {
			fmt.Printf("    %s\n", v)
		}
		fmt.Printf("    minimal script: %s\n", f.MinConfig.Script)
		fmt.Printf("    reproduce: %s\n", f.Repro)
	}
}

func printResult(r chaos.Result) {
	fmt.Printf("%-10s seed=%-6d digest=%016x sent=%d skipped=%d delivered=%d "+
		"faults(drop=%d dup=%d delay=%d) holdback-max=%d stab-hw=%d unavail(max=%s mean=%s)\n",
		r.Substrate, r.Seed, r.Digest, r.Sent, r.Skipped, r.Delivered,
		r.Faults.Dropped, r.Faults.Duplicated, r.Faults.Delayed,
		r.MaxHoldback, r.StabHighWater, round(r.UnavailMax), round(r.UnavailMean))
	if len(r.Script.Ops) > 0 {
		fmt.Printf("  script: %s\n", r.Script)
	}
	for _, v := range r.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	if len(r.Violations) == 0 {
		fmt.Println("  all oracles passed")
	}
}

func printSummary(s chaos.Summary) {
	fmt.Printf("%-10s episodes=%-3d digest=%016x sent=%d skipped=%d delivered=%d "+
		"faults(drop=%d dup=%d delay=%d) holdback-max=%d stab-hw=%d unavail(max=%s mean=%s) violations=%s\n",
		s.Substrate, s.Episodes, s.Digest, s.Sent, s.Skipped, s.Delivered,
		s.Faults.Dropped, s.Faults.Duplicated, s.Faults.Delayed,
		s.MaxHoldback, s.StabHighWater, round(s.UnavailMax), round(s.UnavailMean),
		s.ViolationSummary())
	for _, f := range s.Failures {
		fmt.Printf("  FAILING EPISODE seed=%d\n", f.Seed)
		for _, v := range f.Result.Violations {
			fmt.Printf("    %s\n", v)
		}
		fmt.Printf("    minimal script: %s\n", f.MinConfig.Script)
		fmt.Printf("    reproduce: %s\n", f.Repro)
	}
}

func round(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
