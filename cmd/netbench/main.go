// Command netbench runs one real-network fleet benchmark and prints
// the E22 measurement as JSON lines, ready for the bench-snapshot
// pipeline (`netbench | benchsnap -kind loadgen`). It builds cmd/node
// and cmd/loadgen into a temporary directory, stands up the fleet as
// OS processes, drives it with simulated clients, and tears it down.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"catocs/internal/experiments"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 3, "fleet processes")
		workers  = flag.Int("workers", 2, "loadgen shards")
		clients  = flag.Int("clients", 20000, "simulated clients")
		rate     = flag.Float64("rate", 8000, "target publishes/sec")
		size     = flag.Int("size", 64, "payload bytes")
		duration = flag.Duration("duration", 4*time.Second, "send phase")
	)
	flag.Parse()
	if err := realMain(*nodes, *workers, *clients, *rate, *size, *duration); err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}

func realMain(nodes, workers, clients int, rate float64, size int, duration time.Duration) error {
	bin, err := os.MkdirTemp("", "catocs-net-bin")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)
	if err := experiments.BuildNetBinaries(bin); err != nil {
		return err
	}
	for _, substrate := range []string{"cbcast", "abcast"} {
		work, err := os.MkdirTemp("", "catocs-net-run")
		if err != nil {
			return err
		}
		pt, err := experiments.RunE22(experiments.E22Config{
			Substrate: substrate, Nodes: nodes, Workers: workers,
			Clients: clients, Rate: rate, MsgSize: size,
			Duration: duration, BinDir: bin, WorkDir: work,
		})
		os.RemoveAll(work)
		if err != nil {
			return err
		}
		fmt.Println(pt.JSON())
	}
	return nil
}
