// Command node runs one fleet member: an ordered-multicast group
// member plus a pubsub ingress endpoint, hosted on a real TCP
// transport so independent OS processes form the group.
//
// Quickstart (3-node abcast fleet plus one loadgen worker):
//
//	FLEET="0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002"
//	WORKERS="100=127.0.0.1:7100"
//	EPOCH=$(date +%s%N)
//	for i in 0 1 2; do
//	  node -id $i -nodes "$FLEET" -workers "$WORKERS" \
//	       -substrate abcast -epoch $EPOCH -stats node$i.json &
//	done
//	loadgen -nodes "$FLEET" -workers "$WORKERS" -epoch $EPOCH \
//	        -clients 100000 -rate 5000 -duration 10s
//
// The process runs until SIGINT/SIGTERM (or -run elapses), then writes
// its stats snapshot (and, with -trace, its obs trace as JSON lines —
// merge the fleet's traces with obs.MergeEvents and feed the chaos
// oracles to audit ordering) and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"catocs/internal/netharness"
	"catocs/internal/obs"
	"catocs/internal/obs/live"
	"catocs/internal/transport"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this node's fleet NodeID")
		nodesFlag = flag.String("nodes", "", "fleet topology: id=host:port,...")
		workers   = flag.String("workers", "", "loadgen worker endpoints: id=host:port,...")
		substrate = flag.String("substrate", "abcast", "ordering substrate: cbcast|abcast")
		epoch     = flag.Int64("epoch", 0, "shared wall-clock epoch (unix nanos; 0 = process start)")
		obsAddr   = flag.String("obs", "", "serve /metrics /healthz /tracez on this address")
		traceOut  = flag.String("trace", "", "write the obs trace (JSON lines) here on shutdown")
		statsOut  = flag.String("stats", "", "write the stats snapshot JSON here on shutdown (default stdout)")
		run       = flag.Duration("run", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	)
	flag.Parse()
	if err := realMain(*id, *nodesFlag, *workers, *substrate, *epoch, *obsAddr, *traceOut, *statsOut, *run); err != nil {
		fmt.Fprintln(os.Stderr, "node:", err)
		os.Exit(1)
	}
}

func realMain(id int, nodesFlag, workersFlag, substrate string, epoch int64, obsAddr, traceOut, statsOut string, run time.Duration) error {
	nodes, err := netharness.ParseNodeMap(nodesFlag)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("-nodes is required")
	}
	workers, err := netharness.ParseNodeMap(workersFlag)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if traceOut != "" {
		tracer = obs.NewTracer()
	}
	registry := obs.NewRegistry()

	node, err := netharness.StartFleetNode(netharness.NodeConfig{
		ID:         transport.NodeID(id),
		Nodes:      nodes,
		Workers:    workers,
		Substrate:  substrate,
		EpochNanos: epoch,
		Tracer:     tracer,
		Registry:   registry,
	})
	if err != nil {
		return err
	}

	if obsAddr != "" {
		srv, err := live.Serve(obsAddr, live.Options{Registry: registry, Tracer: tracer})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "node %d: observability on http://%s\n", id, srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if run > 0 {
		select {
		case <-sig:
		case <-time.After(run):
		}
	} else {
		<-sig
	}

	snap := node.Snapshot()
	node.Close()

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteEventsJSON(f, tracer.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	out := os.Stdout
	if statsOut != "" {
		f, err := os.Create(statsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	return enc.Encode(snap)
}
