// Command node runs one fleet member: an ordered-multicast group
// member plus a pubsub ingress endpoint, hosted on a real TCP
// transport so independent OS processes form the group.
//
// Quickstart (3-node abcast fleet plus one loadgen worker):
//
//	FLEET="0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002"
//	WORKERS="100=127.0.0.1:7100"
//	EPOCH=$(date +%s%N)
//	for i in 0 1 2; do
//	  node -id $i -nodes "$FLEET" -workers "$WORKERS" \
//	       -substrate abcast -epoch $EPOCH -stats node$i.json &
//	done
//	loadgen -nodes "$FLEET" -workers "$WORKERS" -epoch $EPOCH \
//	        -clients 100000 -rate 5000 -duration 10s
//
// The process runs until SIGINT/SIGTERM (or -run elapses), then writes
// its stats snapshot (and, with -trace, its obs trace as JSON lines —
// merge the fleet's traces with obs.MergeEvents and feed the chaos
// oracles to audit ordering) and exits.
//
// With -wal the process has a durable member identity, and a restart
// over the same path is a crash recovery: the incarnation is bumped,
// the send/receive chains resume from the checkpoint, and the unstable
// cast suffix is replayed — so the real-TCP fleet exercises the same
// rejoin discipline as the simulated membership stack. SIGTERM exits
// without retiring the replay set (restart = recovery drill); SIGINT
// and -run elapsing exit clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"catocs/internal/netharness"
	"catocs/internal/obs"
	"catocs/internal/obs/live"
	"catocs/internal/transport"
	"catocs/internal/wal"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this node's fleet NodeID")
		nodesFlag = flag.String("nodes", "", "fleet topology: id=host:port,...")
		workers   = flag.String("workers", "", "loadgen worker endpoints: id=host:port,...")
		substrate = flag.String("substrate", "abcast", "ordering substrate: cbcast|abcast")
		epoch     = flag.Int64("epoch", 0, "shared wall-clock epoch (unix nanos; 0 = process start)")
		obsAddr   = flag.String("obs", "", "serve /metrics /healthz /tracez on this address")
		traceOut  = flag.String("trace", "", "write the obs trace (JSON lines) here on shutdown")
		statsOut  = flag.String("stats", "", "write the stats snapshot JSON here on shutdown (default stdout)")
		run       = flag.Duration("run", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
		walPath   = flag.String("wal", "", "durable member identity: WAL file persisted across restarts (restart = crash recovery)")
	)
	flag.Parse()
	if err := realMain(*id, *nodesFlag, *workers, *substrate, *epoch, *obsAddr, *traceOut, *statsOut, *walPath, *run); err != nil {
		fmt.Fprintln(os.Stderr, "node:", err)
		os.Exit(1)
	}
}

func realMain(id int, nodesFlag, workersFlag, substrate string, epoch int64, obsAddr, traceOut, statsOut, walPath string, run time.Duration) error {
	nodes, err := netharness.ParseNodeMap(nodesFlag)
	if err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("-nodes is required")
	}
	workers, err := netharness.ParseNodeMap(workersFlag)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if traceOut != "" {
		tracer = obs.NewTracer()
	}
	registry := obs.NewRegistry()

	// With -wal, this process has a durable identity: a restart over
	// the same path is a crash recovery, not a new member. Recovery
	// bumps the incarnation and hands the chain checkpoint plus the
	// unstable cast suffix to the fleet node to replay — the real-TCP
	// analogue of the SimNet WAL rejoin.
	var (
		flog *wal.FileLog
		mlog *wal.MemberLog
		rec  wal.RecoveredMember
	)
	if walPath != "" {
		flog, err = wal.OpenFileLog(walPath)
		if err != nil {
			return err
		}
		defer flog.Close()
		mlog, rec, err = wal.OpenMemberLog(flog.Device())
		if err != nil {
			return err
		}
		if rec.Records > 0 {
			inc, _ := mlog.BumpIncarnation()
			fmt.Fprintf(os.Stderr, "node %d: rejoin epoch=%d incarnation=%d replay=%d truncated=%d\n",
				id, epoch, inc, len(rec.Casts), rec.Truncated)
		}
	}

	node, err := netharness.StartFleetNode(netharness.NodeConfig{
		ID:         transport.NodeID(id),
		Nodes:      nodes,
		Workers:    workers,
		Substrate:  substrate,
		EpochNanos: epoch,
		Log:        mlog,
		Recovered:  rec,
		Tracer:     tracer,
		Registry:   registry,
	})
	if err != nil {
		return err
	}

	if obsAddr != "" {
		srv, err := live.Serve(obsAddr, live.Options{Registry: registry, Tracer: tracer})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "node %d: observability on http://%s\n", id, srv.Addr())
	}

	// Shutdown semantics with -wal: SIGINT and -run elapsing are the
	// operator's clean exit — the WAL is checkpointed with every cast
	// marked stable, so the next start replays nothing. SIGTERM is the
	// recovery drill: the chain checkpoint is written but the unstable
	// suffix stays, so restarting over the same -wal path replays it
	// through the same splice a SimNet rejoin exercises.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	clean := true
	if run > 0 {
		select {
		case s := <-sig:
			clean = s != syscall.SIGTERM
		case <-time.After(run):
		}
	} else {
		clean = <-sig != syscall.SIGTERM
	}

	node.Persist(clean)
	snap := node.Snapshot()
	node.Close()

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteEventsJSON(f, tracer.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	out := os.Stdout
	if statsOut != "" {
		f, err := os.Create(statsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	return enc.Encode(snap)
}
