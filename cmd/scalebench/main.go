// Command scalebench runs the Section 5 scalability sweeps: unstable-
// message buffer growth (and the active causal graph census),
// false-causality delivery delay, view-change and join cost, the
// causal-domain partitioning and traffic-shape ablations, the
// total-order mode ablation, durability logging, and the
// name-service-at-scale comparison.
//
// Usage:
//
//	scalebench [-exp buffer|false-causality|header|viewchange|partition|totalorder|
//	            traffic|join|durability|namesvc|scalecast|latbreak|mgcast|all]
//	           [-sizes 4,8,16,32] [-msgs 40] [-loss 0.05] [-seed 1] [-json]
//	           [-ks 1,2,4,8] [-trace out.trace.json]
//	           [-serve :8080] [-linger 5m] [-profile cpu|heap]
//
// -serve exposes the live observability plane (internal/obs/live)
// while the sweeps run: /metrics, /statusz, /tracez (1% sampled
// lifecycles), and /debug/pprof. -linger keeps the endpoint up after
// the sweeps finish. -profile captures a cpu or heap pprof profile of
// the whole invocation, independent of -serve.
//
// The scalecast sweep (-exp scalecast) compares vector-clock CBCAST
// against the constant-metadata flood substrate head-to-head; with
// -json it emits one JSON line per (substrate, N) for plotting, e.g.
//
//	scalebench -exp scalecast -sizes 8,32,128,512 -json
//
// The latency-breakdown sweep (-exp latbreak) decomposes delivery
// latency into network delay vs ordering holdback for CBCAST, ABCAST,
// and scalecast (default sizes 8,32,128); -trace writes the raw causal
// traces of the whole sweep as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto:
//
//	scalebench -exp latbreak -json -trace latbreak.trace.json
//
// The multi-group sweep (-exp mgcast) compares Skeen-style genuine
// multicast against the one-big-group ABCAST fallback across k
// destination groups per cast (default sizes 8,32,128; -ks sets the k
// sweep); -json emits one JSON line per (substrate, N, k):
//
//	scalebench -exp mgcast -sizes 8,32,128 -ks 1,2,4,8 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"catocs/internal/experiments"
	"catocs/internal/obs"
	"catocs/internal/obs/live"
)

func parseSizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	exp := flag.String("exp", "all", "experiment: buffer, false-causality, header, viewchange, partition, totalorder, traffic, join, durability, namesvc, scalecast, latbreak, mgcast, all")
	jsonOut := flag.Bool("json", false, "emit JSON lines instead of tables (scalecast/latbreak/mgcast sweeps)")
	ksFlag := flag.String("ks", "1,2,4,8", "comma-separated destination-group counts per cast (mgcast sweep)")
	sizesFlag := flag.String("sizes", "4,8,16,24", "comma-separated group sizes")
	msgs := flag.Int("msgs", 40, "messages per sender")
	loss := flag.Float64("loss", 0.05, "link loss probability (buffer sweep)")
	seed := flag.Int64("seed", 1, "simulation seed")
	traceOut := flag.String("trace", "", "write the latbreak sweep's causal traces as Chrome trace-event JSON to this file")
	serve := flag.String("serve", "", "serve the live observability plane (/metrics /statusz /tracez /debug/pprof) on this address while sweeps run, e.g. :8080 or 127.0.0.1:0")
	linger := flag.Duration("linger", 0, "with -serve, keep the endpoint up this long after the sweeps finish (so a scrape or a browser can catch the final state)")
	profileKind := flag.String("profile", "", `write a pprof profile of the run: "cpu" or "heap" (to cpu.pprof / heap.pprof)`)
	flag.Parse()

	if *profileKind != "" {
		stop, err := live.StartProfile(*profileKind, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s.pprof\n", *profileKind)
			}
		}()
	}
	if *serve != "" {
		reg := obs.NewRegistry()
		tracer := obs.NewSampledTracer(obs.SampleConfig{Rate: 0.01, Seed: uint64(*seed)})
		srv, err := live.Serve(*serve, live.Options{Registry: reg, Tracer: tracer})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		experiments.SetObsHook(&experiments.ObsHook{Registry: reg, Tracer: tracer, Publish: srv.PublishStatus})
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "lingering %s on http://%s/ (ctrl-c to stop early)\n", *linger, srv.Addr())
				time.Sleep(*linger)
			}
			srv.Close()
		}()
		fmt.Fprintf(os.Stderr, "observability plane on http://%s/\n", srv.Addr())
	}

	sizesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sizes" {
			sizesSet = true
		}
	})
	sizes := parseSizes(*sizesFlag)
	run := func(name string) {
		switch name {
		case "buffer":
			fmt.Println(experiments.TableE6(sizes, *msgs, *loss, *seed).Render())
		case "false-causality":
			fmt.Println(experiments.TableE5(sizes, *msgs, *seed).Render())
			fmt.Println(experiments.TableE5Piggyback(sizes, *msgs, *seed).Render())
		case "header":
			// Header-overhead sweep (E5c): full vs delta-encoded clock
			// bytes per message across group sizes. Also the `make
			// profile` workload — a pure hot-loop exercise of the stamp,
			// encode, and delivery-check paths.
			fmt.Println(experiments.TableE5Header(sizes, *msgs, 1_000_000, *seed).Render())
		case "viewchange":
			fmt.Println(experiments.TableE7(sizes, *seed).Render())
		case "partition":
			var groups []int
			for g := 1; g <= len(sizes); g++ {
				groups = append(groups, g)
			}
			fmt.Println(experiments.TableE6Partition(groups, 4, *msgs, *seed).Render())
		case "totalorder":
			fmt.Println(experiments.TableAblationTotal(sizes, *msgs, *seed).Render())
		case "traffic":
			fmt.Println(experiments.TableE6Traffic(sizes[0], *msgs, *seed).Render())
		case "join":
			fmt.Println(experiments.TableE7Join(sizes, *seed).Render())
		case "durability":
			fmt.Println(experiments.TableE13(sizes, *msgs, *seed).Render())
		case "namesvc":
			fmt.Println(experiments.TableE14(sizes, *msgs, *seed).Render())
		case "scalecast":
			// Head-to-head causal-broadcast metadata sweep; -json emits
			// one JSON line per (substrate, N) for plotting pipelines.
			if *jsonOut {
				for _, pt := range experiments.RunE16Sweep(sizes, 4, *seed) {
					fmt.Println(pt.JSON())
				}
			} else {
				fmt.Println(experiments.TableE16(sizes, 4, *seed).Render())
			}
		case "latbreak":
			// Ordering-latency breakdown (E17). The issue's reference
			// sweep is N ∈ {8,32,128}; an explicit -sizes overrides it.
			latSizes := []int{8, 32, 128}
			if sizesSet {
				latSizes = sizes
			}
			var chrome *obs.ChromeTrace
			if *traceOut != "" {
				chrome = obs.NewChromeTrace()
			}
			var pts []experiments.E17Point
			for _, sub := range []string{"cbcast", "abcast", "scalecast"} {
				for _, n := range latSizes {
					pt, tracer := experiments.RunE17(sub, n, *msgs, *seed)
					pts = append(pts, pt)
					if chrome != nil {
						chrome.AddProcess(fmt.Sprintf("%s N=%d", sub, n),
							tracer.Labels(), tracer.Events())
					}
				}
			}
			if *jsonOut {
				for _, pt := range pts {
					fmt.Println(pt.JSON())
				}
			} else {
				fmt.Println(experiments.TableE17From(pts).Render())
			}
			if chrome != nil {
				f, err := os.Create(*traceOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
					os.Exit(1)
				}
				if err := chrome.Encode(f); err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
			}
		case "mgcast":
			// Multi-group atomic multicast vs one big group (E20). The
			// issue's reference sweep is N ∈ {8,32,128}; -sizes overrides.
			mgSizes := []int{8, 32, 128}
			if sizesSet {
				mgSizes = sizes
			}
			var ks []int
			for _, part := range strings.Split(*ksFlag, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || v < 1 {
					fmt.Fprintf(os.Stderr, "bad k %q\n", part)
					os.Exit(2)
				}
				ks = append(ks, v)
			}
			pts := experiments.RunE20Sweep(mgSizes, ks, *msgs, *seed)
			if *jsonOut {
				for _, pt := range pts {
					fmt.Println(pt.JSON())
				}
			} else {
				fmt.Println(experiments.TableE20From(pts).Render())
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"false-causality", "header", "buffer", "viewchange", "partition",
			"totalorder", "traffic", "join", "durability", "scalecast", "latbreak", "mgcast"} {
			run(name)
		}
		return
	}
	run(*exp)
}
