// Command loadgen drives simulated clients through the pubsub bus
// against a running fleet of cmd/node processes and reports sustained
// throughput, delivery-latency quantiles and wire overhead as one JSON
// line (benchsnap-compatible: pipe through `benchsnap -kind loadgen`).
//
// Each -workers entry becomes one worker shard with its own TCP
// transport and dispatch goroutine; -clients and -rate are split
// evenly across shards, and each shard attaches to a fleet node
// round-robin. Clients are sequence counters, not goroutines, so one
// process simulates millions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"catocs/internal/netharness"
	"catocs/internal/transport"
)

func main() {
	var (
		nodesFlag   = flag.String("nodes", "", "fleet topology: id=host:port,...")
		workersFlag = flag.String("workers", "", "worker shards: id=host:port,... (listen addresses in this process)")
		clients     = flag.Int("clients", 100000, "total simulated clients, split across workers")
		rate        = flag.Float64("rate", 2000, "total publishes/sec, split across workers")
		size        = flag.Int("size", 64, "payload bytes per message")
		duration    = flag.Duration("duration", 10*time.Second, "send phase length")
		epoch       = flag.Int64("epoch", 0, "shared wall-clock epoch (unix nanos; 0 = process start)")
		substrate   = flag.String("substrate", "", "substrate label recorded in the report")
		outPath     = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()
	if err := realMain(*nodesFlag, *workersFlag, *clients, *rate, *size, *duration, *epoch, *substrate, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func realMain(nodesFlag, workersFlag string, clients int, rate float64, size int, duration time.Duration, epoch int64, substrate, outPath string) error {
	nodes, err := netharness.ParseNodeMap(nodesFlag)
	if err != nil {
		return err
	}
	workers, err := netharness.ParseNodeMap(workersFlag)
	if err != nil {
		return err
	}
	if len(nodes) == 0 || len(workers) == 0 {
		return fmt.Errorf("-nodes and -workers are required")
	}
	nodeIDs := netharness.SortedIDs(nodes)
	workerIDs := netharness.SortedIDs(workers)

	nw := len(workerIDs)
	results := make([]*netharness.LoadResult, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for i, w := range workerIDs {
		ingress := nodeIDs[i%len(nodeIDs)]
		cfg := netharness.LoadConfig{
			Worker:  w,
			Listen:  workers[w],
			Ingress: ingress,
			Addrs: netharness.Merge(nodes, map[transport.NodeID]string{
				w: workers[w],
			}),
			Clients:    shard(clients, i, nw),
			Rate:       rate / float64(nw),
			MsgSize:    size,
			Duration:   duration,
			EpochNanos: epoch,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = netharness.RunLoad(cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", int(workerIDs[i]), err)
		}
	}

	report := netharness.LoadReport{
		Substrate:  substrate,
		Nodes:      len(nodeIDs),
		Workers:    nw,
		Clients:    clients,
		TargetRate: rate,
		DurationS:  duration.Seconds(),
	}
	hist := netharness.NewLatencyHist()
	var elapsed time.Duration
	for _, r := range results {
		report.Sent += r.Sent
		report.Done += r.Done
		report.WireBytesIn += r.NetStats.BytesIn
		report.WireBytesOut += r.NetStats.BytesOut
		hist.Merge(r.Hist)
		if r.Elapsed > elapsed {
			elapsed = r.Elapsed
		}
	}
	report.Lost = report.Sent - report.Done
	if elapsed > 0 {
		report.MsgsPerSec = float64(report.Done) / elapsed.Seconds()
	}
	if report.Done > 0 {
		report.BytesPerMsg = float64(report.WireBytesIn+report.WireBytesOut) / float64(report.Done)
	}
	report.Latency = hist.Summarize()

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return json.NewEncoder(out).Encode(report)
}

// shard splits total into nw near-equal pieces.
func shard(total, i, nw int) int {
	base := total / nw
	if i < total%nw {
		base++
	}
	if base == 0 {
		base = 1
	}
	return base
}
