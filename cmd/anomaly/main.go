// Command anomaly reproduces the paper's figures as executed event
// diagrams: Figure 1 (happens-before and causal multicast), Figure 2
// (hidden channel through a shared database), Figure 3 (external
// channel — the fire), and Figure 4 (trading false crossing). Each run
// prints the ASCII event diagram of the actual schedule plus the
// anomaly verdict for the CATOCS observer and the state-level
// observer.
//
// With -trace, each figure's recorded run is additionally rendered as
// an obs space-time diagram (columns per process, one row per event)
// and exported as Chrome trace-event JSON — <prefix>-fig<N>.trace.json
// — loadable in chrome://tracing or Perfetto.
//
// Usage:
//
//	anomaly [-fig 1|2|3|4|all] [-seed n] [-trace prefix]
package main

import (
	"flag"
	"fmt"
	"os"

	"catocs/internal/apps/firealarm"
	"catocs/internal/apps/sfc"
	"catocs/internal/apps/trading"
	"catocs/internal/eventlog"
	"catocs/internal/experiments"
	"catocs/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 1, 2, 3, 4, or all")
	seed := flag.Int64("seed", 1, "simulation seed")
	tracePrefix := flag.String("trace", "", "render each figure's space-time diagram and write <prefix>-fig<N>.trace.json")
	flag.Parse()

	// export converts a figure's event log through the obs bridge: the
	// ASCII space-time diagram goes to stdout, the Chrome trace to disk.
	export := func(f, title string, log *eventlog.Log) {
		if *tracePrefix == "" {
			return
		}
		events, labels := obs.FromEventLog(log)
		fmt.Println(obs.RenderSpaceTime(title+" (space-time)", labels, events))
		path := fmt.Sprintf("%s-fig%s.trace.json", *tracePrefix, f)
		out, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		chrome := obs.NewChromeTrace()
		chrome.AddProcess(title, labels, events)
		if err := chrome.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		out.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	run := func(f string) {
		switch f {
		case "1":
			r := experiments.RunE1(*seed)
			title := "Figure 1 — a 3-process event diagram under causal multicast"
			fmt.Println(r.Log.Render(title))
			fmt.Printf("verdict: m1 before m2 everywhere = %v; m3/m4 delivery diverged across members = %v\n\n",
				r.CausalOrderHeld, r.ConcurrentOrdersDiffer)
			export(f, title, r.Log)
		case "2":
			cfg := sfc.DefaultConfig()
			cfg.Seed = *seed
			r := sfc.Run(cfg)
			title := "Figure 2 — shop floor control: the shared database is a hidden channel"
			fmt.Println(r.Log.Render(title))
			fmt.Printf("database final state:      %q\n", r.TrueFinal)
			fmt.Printf("delivery-order observer:   %q  (anomaly: %v)\n", r.RawFinal, r.AnomalyRaw)
			fmt.Printf("version-ordered observer:  %q  (anomaly: %v)\n\n", r.VersionedFinal, r.AnomalyVersioned)
			export(f, title, r.Log)
		case "3":
			cfg := firealarm.DefaultConfig()
			cfg.Seed = *seed
			r := firealarm.Run(cfg)
			title := "Figure 3 — the fire is an external channel the substrate cannot see"
			fmt.Println(r.Log.Render(title))
			fmt.Printf("fire actually burning:      %v\n", r.TrueFire)
			fmt.Printf("delivery-order belief:      burning=%v  (anomaly: %v)\n", r.RawBelief, r.AnomalyRaw)
			fmt.Printf("timestamped belief:         burning=%v  (anomaly: %v)\n\n", r.TemporalBelief, r.AnomalyTemporal)
			export(f, title, r.Log)
		case "4":
			cfg := trading.DefaultConfig()
			cfg.Seed = *seed
			r := trading.Run(cfg)
			title := "Figure 4 — trading: concurrent base and derived prices"
			fmt.Println(r.Log.Render(title))
			fmt.Printf("raw display:               %d false crossings, %d stale pairings in %d refreshes\n",
				r.RawFalseCrossings, r.RawStalePairings, r.Displays)
			fmt.Printf("dependency-checked display: %d false crossings, %d stale pairings\n\n",
				r.CacheFalseCrossings, r.CacheStalePairings)
			export(f, title, r.Log)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", f)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, f := range []string{"1", "2", "3", "4"} {
			run(f)
		}
		return
	}
	run(*fig)
}
