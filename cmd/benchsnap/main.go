// Command benchsnap converts benchmark output on stdin into JSON
// lines, so `make bench` can accrete machine-readable BENCH_<n>.json
// snapshots that diff cleanly across PRs.
//
// Two modes:
//
//	-kind gobench   parse `go test -bench` text output: one JSON line
//	                per Benchmark result, with ns/op, B/op, allocs/op
//	                and any custom ReportMetric values.
//	-kind <label>   stdin is already JSON lines (e.g. scalebench
//	                -json); tag each line with "kind":"<label>".
//
// Output carries no timestamps or host details, deliberately: a
// snapshot regenerated from the same tree and seed is byte-identical,
// so `diff BENCH_1.json BENCH_2.json` shows only real changes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// goBenchResult is one parsed `go test -bench` line.
type goBenchResult struct {
	Kind     string             `json:"kind"`
	Name     string             `json:"name"`
	Procs    int                `json:"procs,omitempty"`
	Iters    uint64             `json:"iters"`
	NsPerOp  float64            `json:"ns_per_op"`
	BPerOp   *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// parseGoBench parses one benchmark output line, returning ok=false
// for non-benchmark lines (headers, PASS, ok, etc.).
func parseGoBench(line string) (goBenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return goBenchResult{}, false
	}
	r := goBenchResult{Kind: "gobench", Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return goBenchResult{}, false
	}
	r.Iters = iters
	// The remainder is value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return goBenchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			b := v
			r.BPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if !sawNs {
		return goBenchResult{}, false
	}
	return r, true
}

// tagJSONLine injects "kind":label into an existing JSON object line.
// Keys are re-emitted sorted, so output is deterministic.
func tagJSONLine(line, label string) (string, error) {
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		return "", err
	}
	obj["kind"] = label
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(obj[k])
		if err != nil {
			return "", err
		}
		sb.Write(kb)
		sb.WriteByte(':')
		sb.Write(vb)
	}
	sb.WriteByte('}')
	return sb.String(), nil
}

// run processes in→out with the given kind; factored out for testing.
func run(in io.Reader, out io.Writer, kind string) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if kind == "gobench" {
			if r, ok := parseGoBench(line); ok {
				b, err := json.Marshal(r)
				if err != nil {
					return err
				}
				fmt.Fprintln(out, string(b))
			}
			continue
		}
		tagged, err := tagJSONLine(line, kind)
		if err != nil {
			return fmt.Errorf("line %q: %w", line, err)
		}
		fmt.Fprintln(out, tagged)
	}
	return sc.Err()
}

func main() {
	kind := flag.String("kind", "gobench", `"gobench" to parse go test -bench output, any other label to tag JSON lines`)
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *kind); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
