// Command benchsnap converts benchmark output on stdin into JSON
// lines, so `make bench` can accrete machine-readable BENCH_<n>.json
// snapshots that diff cleanly across PRs.
//
// Two modes:
//
//	-kind gobench   parse `go test -bench` text output: one JSON line
//	                per Benchmark result, with ns/op, B/op, allocs/op
//	                and any custom ReportMetric values.
//	-kind <label>   stdin is already JSON lines (e.g. scalebench
//	                -json); tag each line with "kind":"<label>".
//
// Output carries no timestamps or host details by default,
// deliberately: a snapshot regenerated from the same tree and seed is
// byte-identical, so `diff BENCH_1.json BENCH_2.json` shows only real
// changes. -header opts into one provenance line — git commit and UTC
// generation time — which cmd/benchdiff surfaces and otherwise
// ignores.
//
// -out writes to a file instead of stdout and refuses to overwrite an
// existing one (snapshots are trajectory points; clobbering one
// silently would rewrite history). -force overrides.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// goBenchResult is one parsed `go test -bench` line.
type goBenchResult struct {
	Kind     string             `json:"kind"`
	Name     string             `json:"name"`
	Procs    int                `json:"procs,omitempty"`
	Iters    uint64             `json:"iters"`
	NsPerOp  float64            `json:"ns_per_op"`
	BPerOp   *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// parseGoBench parses one benchmark output line, returning ok=false
// for non-benchmark lines (headers, PASS, ok, etc.).
func parseGoBench(line string) (goBenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return goBenchResult{}, false
	}
	r := goBenchResult{Kind: "gobench", Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return goBenchResult{}, false
	}
	r.Iters = iters
	// The remainder is value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return goBenchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			b := v
			r.BPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if !sawNs {
		return goBenchResult{}, false
	}
	return r, true
}

// tagJSONLine injects "kind":label into an existing JSON object line.
// Keys are re-emitted sorted, so output is deterministic.
func tagJSONLine(line, label string) (string, error) {
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		return "", err
	}
	obj["kind"] = label
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(obj[k])
		if err != nil {
			return "", err
		}
		sb.Write(kb)
		sb.WriteByte(':')
		sb.Write(vb)
	}
	sb.WriteByte('}')
	return sb.String(), nil
}

// run processes in→out with the given kind; factored out for testing.
func run(in io.Reader, out io.Writer, kind string) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if kind == "gobench" {
			if r, ok := parseGoBench(line); ok {
				b, err := json.Marshal(r)
				if err != nil {
					return err
				}
				fmt.Fprintln(out, string(b))
			}
			continue
		}
		tagged, err := tagJSONLine(line, kind)
		if err != nil {
			return fmt.Errorf("line %q: %w", line, err)
		}
		fmt.Fprintln(out, tagged)
	}
	return sc.Err()
}

// header is the optional provenance line (-header): where and when the
// snapshot was generated. kind "header" keeps it out of benchmark
// comparisons.
type header struct {
	Kind      string `json:"kind"`
	Commit    string `json:"commit"`
	Generated string `json:"generated_utc"`
}

// gitCommit returns the current short commit hash, or "unknown" when
// git or the repository is unavailable (snapshots can be generated
// from exported trees).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeHeader emits the provenance line.
func writeHeader(out io.Writer, commit string, now time.Time) error {
	b, err := json.Marshal(header{
		Kind:      "header",
		Commit:    commit,
		Generated: now.UTC().Format(time.RFC3339),
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(b))
	return err
}

// openOut resolves the output destination: stdout for an empty path,
// else the named file — created fresh, and refused when it already
// exists unless force is set.
func openOut(path string, force bool) (io.WriteCloser, error) {
	if path == "" {
		return os.Stdout, nil
	}
	flags := os.O_WRONLY | os.O_CREATE | os.O_EXCL
	if force {
		flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if errors.Is(err, os.ErrExist) {
		return nil, fmt.Errorf("%s exists; snapshots are append-only trajectory points (use -force to overwrite)", path)
	}
	return f, err
}

func main() {
	kind := flag.String("kind", "gobench", `"gobench" to parse go test -bench output, any other label to tag JSON lines`)
	withHeader := flag.Bool("header", false, "prepend a provenance line: git commit and UTC generation time")
	outPath := flag.String("out", "", "write to this file instead of stdout; refuses to overwrite")
	force := flag.Bool("force", false, "with -out, overwrite an existing file")
	flag.Parse()
	out, err := openOut(*outPath, *force)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *withHeader {
		if err := writeHeader(out, gitCommit(), time.Now()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := run(os.Stdin, out, *kind); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if out != os.Stdout {
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
