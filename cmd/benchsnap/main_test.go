package main

import (
	"strings"
	"testing"
)

func TestParseGoBench(t *testing.T) {
	r, ok := parseGoBench("BenchmarkE1CausalDelivery-8   \t     100\t  10431906 ns/op\t    0.95 causal-order-held")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "E1CausalDelivery" || r.Procs != 8 || r.Iters != 100 {
		t.Errorf("bad header fields: %+v", r)
	}
	if r.NsPerOp != 10431906 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if got := r.Metrics["causal-order-held"]; got != 0.95 {
		t.Errorf("custom metric = %v", got)
	}

	r, ok = parseGoBench("BenchmarkVCMerge-4 \t 2000000 \t 612 ns/op \t 128 B/op \t 3 allocs/op")
	if !ok {
		t.Fatal("benchmem line not recognised")
	}
	if r.BPerOp == nil || *r.BPerOp != 128 || r.AllocsOp == nil || *r.AllocsOp != 3 {
		t.Errorf("benchmem fields: %+v", r)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tcatocs\t42.1s",
		"",
		"BenchmarkBroken-8 notanumber 12 ns/op",
	} {
		if _, ok := parseGoBench(line); ok {
			t.Errorf("line %q wrongly accepted", line)
		}
	}
}

func TestTagJSONLine(t *testing.T) {
	got, err := tagJSONLine(`{"substrate":"mgcast","n":8}`, "mgcast")
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"mgcast","n":8,"substrate":"mgcast"}`
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	if _, err := tagJSONLine("not json", "x"); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkA-2	10	5 ns/op
PASS
`)
	var out strings.Builder
	if err := run(in, &out, "gobench"); err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"gobench","name":"A","procs":2,"iters":10,"ns_per_op":5}` + "\n"
	if out.String() != want {
		t.Errorf("got %q want %q", out.String(), want)
	}

	in = strings.NewReader(`{"a":1}` + "\n" + `{"b":2}` + "\n")
	out.Reset()
	if err := run(in, &out, "e20"); err != nil {
		t.Fatal(err)
	}
	wantTagged := `{"a":1,"kind":"e20"}` + "\n" + `{"b":2,"kind":"e20"}` + "\n"
	if out.String() != wantTagged {
		t.Errorf("got %q want %q", out.String(), wantTagged)
	}
}
