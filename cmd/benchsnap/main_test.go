package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseGoBench(t *testing.T) {
	r, ok := parseGoBench("BenchmarkE1CausalDelivery-8   \t     100\t  10431906 ns/op\t    0.95 causal-order-held")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "E1CausalDelivery" || r.Procs != 8 || r.Iters != 100 {
		t.Errorf("bad header fields: %+v", r)
	}
	if r.NsPerOp != 10431906 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if got := r.Metrics["causal-order-held"]; got != 0.95 {
		t.Errorf("custom metric = %v", got)
	}

	r, ok = parseGoBench("BenchmarkVCMerge-4 \t 2000000 \t 612 ns/op \t 128 B/op \t 3 allocs/op")
	if !ok {
		t.Fatal("benchmem line not recognised")
	}
	if r.BPerOp == nil || *r.BPerOp != 128 || r.AllocsOp == nil || *r.AllocsOp != 3 {
		t.Errorf("benchmem fields: %+v", r)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tcatocs\t42.1s",
		"",
		"BenchmarkBroken-8 notanumber 12 ns/op",
	} {
		if _, ok := parseGoBench(line); ok {
			t.Errorf("line %q wrongly accepted", line)
		}
	}
}

func TestTagJSONLine(t *testing.T) {
	got, err := tagJSONLine(`{"substrate":"mgcast","n":8}`, "mgcast")
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"mgcast","n":8,"substrate":"mgcast"}`
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	if _, err := tagJSONLine("not json", "x"); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkA-2	10	5 ns/op
PASS
`)
	var out strings.Builder
	if err := run(in, &out, "gobench"); err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"gobench","name":"A","procs":2,"iters":10,"ns_per_op":5}` + "\n"
	if out.String() != want {
		t.Errorf("got %q want %q", out.String(), want)
	}

	in = strings.NewReader(`{"a":1}` + "\n" + `{"b":2}` + "\n")
	out.Reset()
	if err := run(in, &out, "e20"); err != nil {
		t.Fatal(err)
	}
	wantTagged := `{"a":1,"kind":"e20"}` + "\n" + `{"b":2,"kind":"e20"}` + "\n"
	if out.String() != wantTagged {
		t.Errorf("got %q want %q", out.String(), wantTagged)
	}
}

func TestWriteHeader(t *testing.T) {
	var sb strings.Builder
	when := time.Date(2026, 8, 8, 12, 30, 0, 0, time.UTC)
	if err := writeHeader(&sb, "abc1234", when); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(sb.String())
	want := `{"kind":"header","commit":"abc1234","generated_utc":"2026-08-08T12:30:00Z"}`
	if got != want {
		t.Errorf("header = %s, want %s", got, want)
	}
}

func TestOpenOutRefusesOverwrite(t *testing.T) {
	p := filepath.Join(t.TempDir(), "BENCH_9.json")
	if err := os.WriteFile(p, []byte("existing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openOut(p, false); err == nil {
		t.Fatal("expected refusal to overwrite an existing snapshot")
	}
	w, err := openOut(p, true)
	if err != nil {
		t.Fatalf("-force should overwrite: %v", err)
	}
	w.Close()
}

func TestOpenOutCreatesFresh(t *testing.T) {
	p := filepath.Join(t.TempDir(), "BENCH_9.json")
	w, err := openOut(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil || string(b) != "x\n" {
		t.Fatalf("file content = %q, err=%v", b, err)
	}
}
