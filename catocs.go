// Package catocs is a from-scratch implementation and experimental
// critique harness for causally and totally ordered communication
// support (CATOCS), reproducing Cheriton & Skeen, "Understanding the
// Limitations of Causally and Totally Ordered Communication"
// (SOSP 1993).
//
// The package exposes two toolkits and the machinery to compare them:
//
//   - The CATOCS stack: process groups with FIFO, causal
//     (CBCAST-style), and totally ordered (fixed-sequencer and
//     Skeen-agreement) multicast; atomic delivery with unstable-message
//     buffering, stability tracking, and NACK retransmission; heartbeat
//     failure detection and virtually synchronous view changes.
//   - The state-level alternatives the paper advocates: versioned
//     object stores, prescriptive (receiver-side) ordering, an
//     order-preserving dependency cache, strict-2PL + two-phase-commit
//     and optimistic transactions, consistent snapshots, instance-
//     granular deadlock detection, and temporal-precedence real-time
//     monitors.
//
// Everything runs over a pluggable transport: a deterministic
// discrete-event simulation (bit-reproducible under a seed, used by
// every experiment) or a live goroutine network. The experiment
// harness in internal/experiments reproduces each of the paper's
// figures and quantitative claims; see DESIGN.md and EXPERIMENTS.md.
//
// # Quick start
//
//	sim := catocs.NewSimulation(42, catocs.LinkConfig{
//		BaseDelay: 2 * time.Millisecond,
//		Jitter:    5 * time.Millisecond,
//	})
//	nodes := []catocs.NodeID{0, 1, 2}
//	members := catocs.NewGroup(sim.Mux, nodes,
//		catocs.GroupConfig{Group: "demo", Ordering: catocs.Causal},
//		func(rank catocs.ProcessID) catocs.DeliverFunc {
//			return func(d catocs.Delivered) {
//				fmt.Printf("member %d delivered %v\n", rank, d.Payload)
//			}
//		})
//	members[0].Multicast("hello", 5)
//	sim.Kernel.Run()
//
// The same group code runs on a live network via NewLiveNet.
package catocs

import (
	"time"

	"catocs/internal/detect"
	"catocs/internal/group"
	"catocs/internal/multicast"
	"catocs/internal/nameservice"
	"catocs/internal/pubsub"
	"catocs/internal/realtime"
	"catocs/internal/rpc"
	"catocs/internal/sim"
	"catocs/internal/state"
	"catocs/internal/transact"
	"catocs/internal/transport"
	"catocs/internal/vclock"
	"catocs/internal/wal"
)

// ---- Transport layer ----------------------------------------------------

// NodeID addresses an endpoint on a network.
type NodeID = transport.NodeID

// LinkConfig models a link: base delay, uniform jitter, loss and
// duplication probabilities.
type LinkConfig = transport.LinkConfig

// Network is the substrate interface all protocols run over.
type Network = transport.Network

// Mux fans one node's traffic out to several protocol endpoints.
type Mux = transport.Mux

// NewMux wraps a network for multi-protocol nodes.
func NewMux(net Network) *Mux { return transport.NewMux(net) }

// LiveNet is a goroutine-backed network with wall-clock delays.
type LiveNet = transport.LiveNet

// NewLiveNet builds a live network with the given default link model
// and a seed for its jitter/loss draws.
func NewLiveNet(def LinkConfig, seed int64) *LiveNet { return transport.NewLiveNet(def, seed) }

// Simulation bundles a deterministic kernel, its simulated network,
// and a mux, the standard harness for experiments and tests.
type Simulation struct {
	Kernel *sim.Kernel
	Net    *transport.SimNet
	Mux    *transport.Mux
}

// NewSimulation builds a simulated world. Identical seeds and
// workloads replay identically.
func NewSimulation(seed int64, def LinkConfig) *Simulation {
	k := sim.NewKernel(seed)
	n := transport.NewSimNet(k, def)
	return &Simulation{Kernel: k, Net: n, Mux: transport.NewMux(n)}
}

// Run drains the simulation.
func (s *Simulation) Run() { s.Kernel.Run() }

// RunUntil drains events up to the virtual deadline.
func (s *Simulation) RunUntil(d time.Duration) { s.Kernel.RunUntil(d) }

// ---- Logical clocks -----------------------------------------------------

// ProcessID is a dense group-member rank.
type ProcessID = vclock.ProcessID

// VC is a vector clock.
type VC = vclock.VC

// NewVC returns a zeroed vector clock for n processes.
func NewVC(n int) VC { return vclock.New(n) }

// Version is a state-level logical clock: (object, version) — the
// paper's preferred "clock ticks on the state".
type Version = vclock.Version

// ---- The CATOCS stack ---------------------------------------------------

// Ordering selects a group's delivery discipline.
type Ordering = multicast.Ordering

// Delivery disciplines.
const (
	// Unordered delivers on arrival.
	Unordered = multicast.Unordered
	// FIFO preserves per-sender order.
	FIFO = multicast.FIFO
	// Causal preserves happens-before (CBCAST).
	Causal = multicast.Causal
	// TotalSeq is total order via a fixed sequencer.
	TotalSeq = multicast.TotalSeq
	// TotalAgree is total order via Skeen/ISIS agreement.
	TotalAgree = multicast.TotalAgree
	// TotalCausal is sequencer total order that also respects
	// happens-before.
	TotalCausal = multicast.TotalCausal
)

// GroupConfig parameterizes a process group.
type GroupConfig = multicast.Config

// Member is one endpoint of a process group.
type Member = multicast.Member

// Delivered describes a message handed to the application.
type Delivered = multicast.Delivered

// DeliverFunc receives ordered deliveries.
type DeliverFunc = multicast.DeliverFunc

// MsgID identifies a multicast within a group.
type MsgID = multicast.MsgID

// NewGroup builds a full process group on net.
func NewGroup(net Network, nodes []NodeID, cfg GroupConfig, deliverFor func(ProcessID) DeliverFunc) []*Member {
	return multicast.NewGroup(net, nodes, cfg, deliverFor)
}

// NewMember builds a single group endpoint.
func NewMember(net Network, nodes []NodeID, rank ProcessID, cfg GroupConfig, deliver DeliverFunc) *Member {
	return multicast.NewMember(net, nodes, rank, cfg, deliver)
}

// ---- Membership ----------------------------------------------------------

// MonitorConfig parameterizes failure detection.
type MonitorConfig = group.Config

// Monitor runs heartbeat failure detection and virtually synchronous
// view changes for one member.
type Monitor = group.Monitor

// NewMonitor attaches membership to a member. net must be a Mux (the
// member already owns a handler on the node).
func NewMonitor(net Network, member *Member, groupName string, cfg MonitorConfig) *Monitor {
	return group.NewMonitor(net, member, groupName, cfg)
}

// ---- State-level toolkit --------------------------------------------------

// Store is a versioned object store (state clocks).
type Store = state.Store

// NewStore returns an empty versioned store.
func NewStore() *Store { return state.NewStore() }

// Reorderer releases values in prescriptive (version) order.
type Reorderer = state.Reorderer

// NewReorderer returns a reorderer expecting versions 1, 2, 3, ...
func NewReorderer() *Reorderer { return state.NewReorderer() }

// Cache is the order-preserving dependency cache of §4.1.
type Cache = state.Cache

// CacheUpdate is one entry offered to a Cache.
type CacheUpdate = state.Update

// NewCache returns an empty cache.
func NewCache() *Cache { return state.NewCache() }

// ---- Membership: joining ---------------------------------------------------

// Joiner admits a new process into a running group via the flush
// protocol.
type Joiner = group.Joiner

// NewJoiner prepares a join through the given contact member's node.
func NewJoiner(net Network, node, contact NodeID, groupName string, cfg GroupConfig, deliver DeliverFunc) *Joiner {
	return group.NewJoiner(net, node, contact, groupName, cfg, deliver)
}

// ---- Detection (§4.2, Appendix 9.2) ----------------------------------------

// Instance names one RPC invocation or transaction within a process.
type Instance = detect.Instance

// WaitEdge is one instance-granular wait-for relationship.
type WaitEdge = detect.Edge

// WaitGraph is a wait-for graph with deterministic cycle detection.
type WaitGraph = detect.WaitGraph

// NewWaitGraph returns an empty wait-for graph.
func NewWaitGraph() *WaitGraph { return detect.NewWaitGraph() }

// WaitReport is a process's periodic wait-for snapshot.
type WaitReport = detect.Report

// DeadlockMonitor consumes periodic wait-for reports (latest-wins per
// process) and finds cycles — the paper's Appendix 9.2 detector.
type DeadlockMonitor = detect.StateMonitor

// NewDeadlockMonitor returns an empty report-driven deadlock monitor.
func NewDeadlockMonitor() *DeadlockMonitor { return detect.NewStateMonitor() }

// SnapProcess participates in Chandy-Lamport consistent snapshots.
type SnapProcess = detect.SnapProcess

// SnapLocal is one process's contribution to a global snapshot.
type SnapLocal = detect.LocalSnap

// NewSnapProcess registers a snapshot-capable process with an initial
// balance in the money-conservation model.
func NewSnapProcess(net Network, node NodeID, peers []NodeID, initial int64) *SnapProcess {
	return detect.NewSnapProcess(net, node, peers, initial)
}

// ---- Transactions (§4.3/§4.4) ----------------------------------------------

// TxID identifies a transaction.
type TxID = transact.TxID

// LockManager is a strict two-phase-locking lock manager with wait-for
// export.
type LockManager = transact.LockManager

// Lock modes.
const (
	// LockShared permits concurrent readers.
	LockShared = transact.Shared
	// LockExclusive permits a single writer.
	LockExclusive = transact.Exclusive
)

// TxWrite is one key/value assignment within a transaction.
type TxWrite = transact.Write

// TxOutcome reports a finished transaction.
type TxOutcome = transact.Outcome

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager { return transact.NewLockManager() }

// TxCoordinator drives two-phase commit.
type TxCoordinator = transact.Coordinator

// NewTxCoordinator registers a 2PC coordinator at node.
func NewTxCoordinator(net Network, node NodeID) *TxCoordinator {
	return transact.NewCoordinator(net, node)
}

// TxParticipant is a 2PC resource manager applying committed writes to
// a versioned store.
type TxParticipant = transact.Participant

// NewTxParticipant registers a participant at node.
func NewTxParticipant(net Network, node NodeID, store *Store) *TxParticipant {
	return transact.NewParticipant(net, node, store)
}

// OptimisticValidator orders transactions at commit time
// (Kung-Robinson backward validation).
type OptimisticValidator = transact.Validator

// NewOptimisticValidator returns an empty validator.
func NewOptimisticValidator() *OptimisticValidator { return transact.NewValidator() }

// ---- Real-time monitoring (§4.6) -------------------------------------------

// Reading is a timestamped sensor sample.
type Reading = realtime.Reading

// RTMonitor tracks sensor readings.
type RTMonitor = realtime.Monitor

// NewTemporalMonitor returns a monitor with latest-timestamp-wins
// semantics (the paper's recommendation).
func NewTemporalMonitor() *RTMonitor { return realtime.NewTemporalMonitor() }

// ---- The state-level frameworks of the conclusion ---------------------------

// Bus is a subject-based Information Bus endpoint: publish/subscribe
// with per-stream prescriptive ordering, latest-value mode,
// request/reply, and cache-based late-join sync.
type Bus = pubsub.Node

// BusEvent is a delivered publication.
type BusEvent = pubsub.Event

// Subscription ordering modes.
const (
	// BusOrdered releases each (publisher, subject) stream in sequence
	// order.
	BusOrdered = pubsub.Ordered
	// BusLatest keeps newest-wins semantics and drops stale arrivals.
	BusLatest = pubsub.Latest
)

// NewBus attaches a bus endpoint at node with the given peer set.
func NewBus(net Network, node NodeID, peers []NodeID) *Bus {
	return pubsub.NewNode(net, node, peers)
}

// RPCEndpoint is an asynchronous RPC port with instance-granular wait
// tracking.
type RPCEndpoint = rpc.Endpoint

// RPCCtx identifies the serving instance inside a handler.
type RPCCtx = rpc.Ctx

// NewRPCEndpoint registers an RPC endpoint at node under a process
// name.
func NewRPCEndpoint(net Network, node NodeID, name string) *RPCEndpoint {
	return rpc.NewEndpoint(net, node, name)
}

// DirectoryReplica is a §4.5 gossip-replicated name service node.
type DirectoryReplica = nameservice.Replica

// NewDirectoryReplica registers a gossip directory replica.
func NewDirectoryReplica(net Network, node NodeID, peers []NodeID) *DirectoryReplica {
	return nameservice.NewReplica(net, node, peers)
}

// ---- Durability (§6) --------------------------------------------------------

// LogDevice models append-only stable storage.
type LogDevice = wal.Device

// NewLogDevice returns an empty device.
func NewLogDevice() *LogDevice { return wal.NewDevice() }

// DurableStore logs every update with its state clock before applying.
type DurableStore = wal.DurableStore

// NewDurableStore wraps a fresh store around the device.
func NewDurableStore(dev *LogDevice) *DurableStore { return wal.NewDurableStore(dev) }

// Recover replays a device's log into a fresh store.
func Recover(dev *LogDevice) (*Store, int, error) { return wal.Recover(dev) }
