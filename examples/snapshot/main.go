// Consistent-snapshot example (paper §4.2): a Chandy-Lamport cut over
// a money-transfer system, taken with a protocol that runs only when a
// snapshot is wanted — no CATOCS on the data path. The cut is
// consistent exactly when total recorded money (process states plus
// recorded in-flight transfers) equals the true total.
//
//	go run ./examples/snapshot
package main

import (
	"fmt"
	"time"

	"catocs/internal/detect"
	"catocs/internal/sim"
	"catocs/internal/transport"
)

func main() {
	const (
		procs   = 5
		initial = 1000
	)
	k := sim.NewKernel(7)
	net := transport.NewSimNet(k, transport.LinkConfig{
		BaseDelay: time.Millisecond,
		Jitter:    5 * time.Millisecond,
	})

	nodes := make([]transport.NodeID, procs)
	ps := make([]*detect.SnapProcess, procs)
	for i := range nodes {
		nodes[i] = transport.NodeID(i)
	}
	for i := 0; i < procs; i++ {
		var peers []transport.NodeID
		for j := 0; j < procs; j++ {
			if j != i {
				peers = append(peers, nodes[j])
			}
		}
		ps[i] = detect.NewSnapProcess(net, nodes[i], peers, initial)
	}

	var snaps []detect.LocalSnap
	for _, p := range ps {
		p.OnComplete = func(s detect.LocalSnap) { snaps = append(snaps, s) }
	}

	// A storm of random transfers, with the snapshot racing through the
	// middle of it.
	rng := k.Rand()
	for i := 0; i < 300; i++ {
		at := time.Duration(rng.Intn(100)) * time.Millisecond
		from, to := rng.Intn(procs), rng.Intn(procs)
		amt := int64(rng.Intn(80))
		if from == to {
			continue
		}
		k.At(at, func() { ps[from].Send(nodes[to], amt) })
	}
	k.At(50*time.Millisecond, func() {
		fmt.Println("t=50ms: process 0 initiates the snapshot mid-storm")
		ps[0].StartSnapshot(1)
	})
	k.Run()

	detect.SortSnaps(snaps)
	fmt.Println("\nlocal snapshots (state + recorded in-flight):")
	for _, s := range snaps {
		inflight := int64(0)
		for _, amt := range s.Channel {
			inflight += amt
		}
		fmt.Printf("  process %d: state=%5d  in-flight recorded=%4d\n", s.Node, s.State, inflight)
	}
	total := detect.GlobalTotal(snaps)
	fmt.Printf("\nsnapshot total = %d, true total = %d -> consistent cut: %v\n",
		total, procs*initial, total == procs*initial)

	var live int64
	for _, p := range ps {
		live += p.Money()
	}
	fmt.Printf("post-run live total = %d (conservation check)\n", live)
}
