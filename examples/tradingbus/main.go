// Trading over the information bus — the paper's conclusion made
// concrete (§6 and reference [23]): the same trading-floor dataflow as
// examples/trading, but built on the state-level pub/sub framework
// instead of ordered multicast. Option prices and theoretical prices
// are subjects; the computed price carries its dependency (the base
// price's sequence number) in-band; the monitor displays only
// dependency-current pairs; a late-joining monitor synchronizes from
// publisher caches instead of replaying communication history.
//
//	go run ./examples/tradingbus
package main

import (
	"fmt"
	"time"

	"catocs/internal/pubsub"
	"catocs/internal/sim"
	"catocs/internal/transport"
)

type theoPrice struct {
	Value   float64
	BaseSeq uint64
}

func main() {
	k := sim.NewKernel(7)
	net := transport.NewSimNet(k, transport.LinkConfig{
		BaseDelay: 2 * time.Millisecond,
		Jitter:    8 * time.Millisecond,
	})
	mk := func(id transport.NodeID, peers ...transport.NodeID) *pubsub.Node {
		return pubsub.NewNode(net, id, peers)
	}
	pricer := mk(0, 1, 2, 3)
	computer := mk(1, 0, 2, 3)
	monitor := mk(2, 0, 1, 3)
	late := mk(3, 0, 1, 2)

	// The theoretical pricer recomputes on every base tick and stamps
	// the dependency in-band.
	computer.Subscribe("prices.OPT", pubsub.Latest, func(e pubsub.Event) {
		computer.Publish("theo.OPT", theoPrice{Value: e.Value.(float64) + 0.25, BaseSeq: e.Seq})
	})

	// The monitor keeps latest-value views and applies the §4.1
	// currency check before "displaying".
	var optSeq uint64
	var optVal float64
	displayed, filtered := 0, 0
	monitor.Subscribe("prices.OPT", pubsub.Latest, func(e pubsub.Event) {
		optSeq, optVal = e.Seq, e.Value.(float64)
	})
	monitor.Subscribe("theo.OPT", pubsub.Latest, func(e pubsub.Event) {
		th := e.Value.(theoPrice)
		if th.BaseSeq < optSeq {
			filtered++ // stale pairing: hold the previous consistent display
			return
		}
		displayed++
		fmt.Printf("%7v  display: option %.2f / theoretical %.2f (base #%d)\n",
			k.Now().Round(time.Millisecond), optVal, th.Value, th.BaseSeq)
	})

	price := 25.50
	for i := 0; i < 6; i++ {
		i := i
		k.At(time.Duration(i)*15*time.Millisecond, func() {
			fmt.Printf("%7v  tick: option -> %.2f\n", k.Now().Round(time.Millisecond), price)
			pricer.Publish("prices.OPT", price)
			price += 0.50
		})
	}
	k.Run()
	fmt.Printf("\nmonitor: %d consistent displays, %d stale pairings filtered by the dependency field\n",
		displayed, filtered)

	// A late monitor joins and syncs current values from caches.
	got := map[string]any{}
	late.Subscribe("prices.>", pubsub.Latest, func(e pubsub.Event) { got[e.Subject] = e.Value })
	late.Subscribe("theo.>", pubsub.Latest, func(e pubsub.Event) { got[e.Subject] = e.Value })
	late.Sync(">")
	k.Run()
	fmt.Printf("late joiner synchronized from caches: %v\n", got)
}
