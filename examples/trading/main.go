// Trading-floor example (paper §4.1, Figure 4): an option-pricing feed
// and a theoretical-pricing service multicast to a monitor. The demo
// runs the same schedule under causal multicast and shows the false
// crossing the ordering layer cannot prevent, then the dependency-field
// display that can.
//
//	go run ./examples/trading
package main

import (
	"fmt"

	"catocs/internal/apps/trading"
	"catocs/internal/multicast"
)

func main() {
	cfg := trading.DefaultConfig()
	r := trading.Run(cfg)
	fmt.Println(r.Log.Render("Trading floor under causal multicast"))
	fmt.Printf("raw (delivery-order) display:   %d false crossings, %d stale pairings over %d refreshes\n",
		r.RawFalseCrossings, r.RawStalePairings, r.Displays)
	fmt.Printf("dependency-checked display:     %d false crossings, %d stale pairings\n\n",
		r.CacheFalseCrossings, r.CacheStalePairings)

	fmt.Println("Randomized trials (10 runs each):")
	fmt.Printf("%-10s  %14s  %14s  %18s\n", "ordering", "raw crossings", "raw stale", "dep-checked (both)")
	for _, ord := range []multicast.Ordering{multicast.Causal, multicast.TotalSeq} {
		rawCross, rawStale, cacheCross, cacheStale := trading.Trials(10, 77, ord)
		fmt.Printf("%-10s  %14d  %14d  %18d\n", ord, rawCross, rawStale, cacheCross+cacheStale)
	}
	fmt.Println("\nthe semantic constraint — theo ordered after its base price and before all")
	fmt.Println("subsequent changes — is stronger than happens-before; only the state-level")
	fmt.Println("dependency field enforces it.")
}
