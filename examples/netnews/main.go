// Netnews example (paper §4.1): inquiry/response ordering over an
// asymmetric feed, solved with the References field in the news
// database versus a whole-feed causal group.
//
//	go run ./examples/netnews
package main

import (
	"fmt"

	"catocs/internal/apps/netnews"
)

func main() {
	cfg := netnews.DefaultConfig()
	fmt.Printf("sites=%d posts=%d (each inquiry draws one response); site %d's feed is slow to half the sites\n\n",
		cfg.Sites, cfg.Posts, cfg.SlowSite)

	rs := netnews.RunState(cfg)
	rc := netnews.RunCatocs(cfg)

	fmt.Printf("%-22s  %10s  %12s  %14s  %12s\n",
		"treatment", "misorders", "mean ms(all)", "mean ms(fresh)", "peak state")
	fmt.Printf("%-22s  %10d  %12s  %14s  %12d\n",
		"raw display (would-be)", rs.MisorderedDisplays, "-", "-", 0)
	fmt.Printf("%-22s  %10d  %12.2f  %14.2f  %12d\n",
		"References database", 0, rs.DisplayLatency.Mean()*1000, rs.UnrelatedLatency.Mean()*1000, rs.PeakOrderingState)
	fmt.Printf("%-22s  %10d  %12.2f  %14.2f  %12d\n",
		"causal group", rc.MisorderedDisplays, rc.DisplayLatency.Mean()*1000, rc.UnrelatedLatency.Mean()*1000, rc.PeakOrderingState)

	fmt.Println("\nthe References database displays fresh articles immediately and holds only the")
	fmt.Println("responses whose inquiry is missing; the causal group makes unrelated articles")
	fmt.Println("queue behind the slow site's causally prior traffic.")
}
