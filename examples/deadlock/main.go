// Deadlock-detection example (paper §4.2, Appendix 9.2): the same RPC
// workload with an injected three-way deadlock, detected by van
// Renesse's causal-multicast algorithm and by the paper's instance-id
// periodic-report algorithm.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"time"

	"catocs/internal/detect"
	"catocs/internal/experiments"
)

func main() {
	// First, the instance-granular wait-for graph by hand: the "A15
	// waits for B37" notation from the appendix.
	g := detect.NewWaitGraph()
	a15 := detect.Instance{Proc: "A", ID: 15}
	b37 := detect.Instance{Proc: "B", ID: 37}
	c9 := detect.Instance{Proc: "C", ID: 9}
	g.AddEdge(a15, b37)
	g.AddEdge(b37, c9)
	g.AddEdge(c9, a15)
	fmt.Printf("wait-for edges: %v\n", g.Edges())
	fmt.Printf("cycle found:    %v\n\n", g.FindCycle())

	// Then the full comparison on a simulated RPC workload.
	for _, workers := range []int{4, 8} {
		pt := experiments.RunE8(workers, 100, 25*time.Millisecond, 7)
		fmt.Printf("workers=%d, 100 background RPCs, 3-way deadlock injected:\n", workers)
		fmt.Printf("  van Renesse (causal multicast): %5d msgs, detected in %6.2f ms\n",
			pt.VRMsgs, pt.VRDetectMs)
		fmt.Printf("  instance-id (periodic reports): %5d msgs, detected in %6.2f ms\n",
			pt.STMsgs, pt.STDetectMs)
		fmt.Printf("  message ratio: %.1fx, false deadlocks: %d\n\n",
			float64(pt.VRMsgs)/float64(pt.STMsgs), pt.VRFalse+pt.STFalse)
	}
	fmt.Println("the causal algorithm pays 2 multicasts to everyone per RPC to detect an")
	fmt.Println("infrequent event; periodic local wait-for reports detect the same deadlocks")
	fmt.Println("with no ordered multicast, and handle multi-threaded servers by instance id.")
}
