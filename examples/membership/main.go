// Membership example: virtually synchronous view changes in action —
// a member crashes (flush, suppression, new view), then a new member
// joins through the same protocol. Prints the view history as it
// unfolds.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"time"

	"catocs"
	"catocs/internal/group"
	"catocs/internal/multicast"
)

func main() {
	sim := catocs.NewSimulation(3, catocs.LinkConfig{BaseDelay: 2 * time.Millisecond})
	nodes := []catocs.NodeID{0, 1, 2, 3}
	mcfg := catocs.GroupConfig{Group: "demo", Ordering: catocs.Causal, Atomic: true}

	members := catocs.NewGroup(sim.Mux, nodes, mcfg,
		func(rank catocs.ProcessID) catocs.DeliverFunc {
			return func(d catocs.Delivered) {
				fmt.Printf("%7v  member(node %d) delivered %q\n", sim.Kernel.Now().Round(time.Millisecond), rank, d.Payload)
			}
		})
	monitors := make([]*catocs.Monitor, len(members))
	for i, m := range members {
		i, m := i, m
		monitors[i] = catocs.NewMonitor(sim.Mux, m, "demo", catocs.MonitorConfig{})
		monitors[i].OnView = func(epoch uint64, viewNodes []catocs.NodeID) {
			fmt.Printf("%7v  node %d installed view epoch=%d members=%v\n",
				sim.Kernel.Now().Round(time.Millisecond), m.Node(), epoch, viewNodes)
		}
		monitors[i].Start()
	}

	fmt.Println("--- steady state: a multicast reaches all four members ---")
	sim.Kernel.At(10*time.Millisecond, func() { members[0].Multicast("hello-4", 8) })

	fmt.Println("--- node 3 crashes at t=60ms; survivors flush and re-form ---")
	sim.Kernel.At(60*time.Millisecond, func() {
		sim.Net.Crash(3)
		monitors[3].Stop()
		members[3].Close()
	})

	// A joiner arrives after the dust settles.
	joiner := group.NewJoiner(sim.Mux, 9, 0, "demo",
		multicast.Config{Group: "demo", Ordering: multicast.Causal, Atomic: true},
		func(d multicast.Delivered) {
			fmt.Printf("%7v  joiner(node 9) delivered %q\n", sim.Kernel.Now().Round(time.Millisecond), d.Payload)
		})
	joiner.OnJoined = func(m *multicast.Member) {
		fmt.Printf("%7v  node 9 joined: epoch=%d rank=%d view=%v\n",
			sim.Kernel.Now().Round(time.Millisecond), m.Epoch(), m.Rank(), m.ViewNodes())
		mon := catocs.NewMonitor(sim.Mux, m, "demo", catocs.MonitorConfig{})
		mon.Start()
		sim.Kernel.After(20*time.Millisecond, func() {
			m.Multicast("greetings-from-node-9", 8)
		})
	}
	fmt.Println("--- node 9 asks to join at t=400ms ---")
	sim.Kernel.At(400*time.Millisecond, func() { joiner.Start() })

	sim.RunUntil(800 * time.Millisecond)
	fmt.Println("--- done ---")
}
