// Quickstart: a causal process group on the live (goroutine) network.
//
// Three members form a group. Member 0 multicasts a question; member 1
// answers after delivering it. Causal multicast guarantees every member
// sees the question before the answer, despite the jittery network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	"catocs"
)

func main() {
	net := catocs.NewLiveNet(catocs.LinkConfig{
		BaseDelay: 5 * time.Millisecond,
		Jitter:    10 * time.Millisecond,
	}, 42)
	defer net.Close()

	nodes := []catocs.NodeID{0, 1, 2}
	var mu sync.Mutex
	done := make(chan struct{}, 16)
	var members []*catocs.Member
	members = catocs.NewGroup(net, nodes,
		catocs.GroupConfig{Group: "quickstart", Ordering: catocs.Causal},
		func(rank catocs.ProcessID) catocs.DeliverFunc {
			return func(d catocs.Delivered) {
				mu.Lock()
				fmt.Printf("member %d delivered %-28q (latency %v)\n", rank, d.Payload, d.Latency.Round(time.Millisecond))
				mu.Unlock()
				if rank == 1 && d.Payload == "what is the answer?" {
					members[1].Multicast("the answer is 42", 16)
				}
				done <- struct{}{}
			}
		})

	members[0].Multicast("what is the answer?", 19)

	// 2 messages x 3 members = 6 deliveries.
	for i := 0; i < 6; i++ {
		<-done
	}
	fmt.Println("\nevery member saw the question before the answer — happens-before preserved.")
}
