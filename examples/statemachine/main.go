// Replicated state machine example: commands totally ordered by the
// causally consistent sequencer, write-ahead logged with their global
// position (the state clock), and recovered by replaying the log —
// the §6 moral that durability and recovery are state-level concerns,
// with the ordered multicast merely an optimization inside.
//
//	go run ./examples/statemachine
package main

import (
	"fmt"
	"time"

	"catocs/internal/rsm"
	"catocs/internal/sim"
	"catocs/internal/transport"
	"catocs/internal/wal"
)

func main() {
	k := sim.NewKernel(11)
	net := transport.NewSimNet(k, transport.LinkConfig{
		BaseDelay: time.Millisecond,
		Jitter:    3 * time.Millisecond,
		LossProb:  0.1, // atomic delivery recovers the losses
	})
	nodes := []transport.NodeID{0, 1, 2}
	devices := []*wal.Device{wal.NewDevice(), wal.NewDevice(), wal.NewDevice()}
	replicas, err := rsm.NewGroup(net, nodes, devices)
	if err != nil {
		panic(err)
	}

	fmt.Println("three replicas, 10% loss, concurrent writers:")
	replicas[0].Submit(rsm.Command{Op: "set", Key: "color", Value: "red"})
	replicas[1].Submit(rsm.Command{Op: "set", Key: "color", Value: "blue"})
	replicas[2].Submit(rsm.Command{Op: "set", Key: "size", Value: 42})
	replicas[0].Submit(rsm.Command{Op: "del", Key: "size"})
	k.RunUntil(3 * time.Second)
	for _, r := range replicas {
		r.Member().Close()
	}

	for i, r := range replicas {
		color, _ := r.Get("color")
		_, hasSize := r.Get("size")
		fmt.Printf("  replica %d: applied=%d color=%v size-present=%v\n",
			i, r.Applied(), color, hasSize)
	}
	fmt.Printf("converged: %v\n\n", rsm.Converged(replicas))

	fmt.Println("crash-recovery from replica 2's write-ahead log alone:")
	fresh, err := rsm.Recover(devices[2])
	if err != nil {
		panic(err)
	}
	color, _ := fresh.Get("color")
	fmt.Printf("  recovered replica: applied=%d color=%v (log: %d records, %d bytes)\n",
		fresh.Applied(), color, devices[2].Len(), devices[2].Bytes())
}
