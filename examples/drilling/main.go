// Drilling-cell example (paper Appendix 9.1): the same manufacturing
// task — drill every hole exactly once, survive a driller crash —
// solved with a central controller (point-to-point, linear traffic)
// and with Birman's causally ordered distributed scheduling (every
// completion multicast to every driller).
//
//	go run ./examples/drilling
package main

import (
	"fmt"
	"time"

	"catocs/internal/apps/drilling"
)

func main() {
	cfg := drilling.Config{
		Seed:         1,
		Holes:        24,
		Drillers:     6,
		DrillTime:    10 * time.Millisecond,
		CrashDriller: -1,
	}

	fmt.Printf("cell: %d holes, %d drillers\n\n", cfg.Holes, cfg.Drillers)

	central := drilling.RunCentral(cfg)
	catocs := drilling.RunCatocs(cfg)
	fmt.Println("healthy run:")
	fmt.Printf("  %-8s  completed=%2d  double-drilled=%d  data msgs=%4d  finished=%v\n",
		"central", central.Completed, central.DoubleDrilled, central.DataMsgs, central.Finished.Round(time.Millisecond))
	fmt.Printf("  %-8s  completed=%2d  double-drilled=%d  data msgs=%4d  finished=%v\n",
		"catocs", catocs.Completed, catocs.DoubleDrilled, catocs.DataMsgs, catocs.Finished.Round(time.Millisecond))

	cfg.CrashDriller = 5
	cfg.CrashAt = 15 * time.Millisecond
	centralCrash := drilling.RunCentral(cfg)
	catocsCrash := drilling.RunCatocs(cfg)
	fmt.Println("\ndriller 5 crashes mid-hole:")
	fmt.Printf("  %-8s  completed=%2d  checklist=%v  double-drilled=%d\n",
		"central", centralCrash.Completed, centralCrash.Checklist, centralCrash.DoubleDrilled)
	fmt.Printf("  %-8s  completed=%2d  checklist=%v  double-drilled=%d\n",
		"catocs", catocsCrash.Completed, catocsCrash.Checklist, catocsCrash.DoubleDrilled)

	fmt.Printf("\nmessage asymptotics: catocs/central data-message ratio = %.1fx (grows with drillers)\n",
		float64(catocs.DataMsgs)/float64(central.DataMsgs))
	fmt.Println("both designs keep the invariant: no hole is ever drilled twice; a possibly")
	fmt.Println("part-drilled hole lands on the checklist instead of being re-drilled.")
}
