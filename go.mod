module catocs

go 1.22
