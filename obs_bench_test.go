package catocs

// Overhead budget for the live observability plane: always-on sampled
// tracing only earns its name if the disabled path costs ~nothing and
// the 1% head-sampled configuration stays within a few percent of
// tracing off. These benchmarks run the MulticastThroughputCausal
// workload under three tracer configurations so `make bench` records
// all three in the BENCH_<n>.json trajectory, where cmd/benchdiff can
// hold the line release over release. TestObsSamplingBudget asserts
// the <5% budget directly (opt-in via OBS_BUDGET_CHECK=1 — wall-clock
// assertions are too noisy for the default test run).

import (
	"flag"
	"os"
	"sort"
	"testing"
	"time"

	"catocs/internal/obs"
)

func benchThroughputObs(b *testing.B, tracer *obs.Tracer) {
	sim := NewSimulation(1, LinkConfig{BaseDelay: time.Millisecond})
	sim.Net.Instrument(tracer, nil, "bench")
	nodes := []NodeID{0, 1, 2, 3}
	delivered := 0
	members := NewGroup(sim.Mux, nodes,
		GroupConfig{Group: "bench", Ordering: Causal, Tracer: tracer},
		func(ProcessID) DeliverFunc {
			return func(Delivered) { delivered++ }
		})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		members[i%4].Multicast(i, 16)
		if i%256 == 255 {
			sim.Run() // drain periodically to bound queue growth
		}
	}
	sim.Run()
	b.ReportMetric(float64(delivered)/float64(b.N), "deliveries/msg")
	if tracer != nil {
		sampled, _ := tracer.SampleStats()
		b.ReportMetric(float64(sampled), "sampled-msgs")
		b.ReportMetric(float64(tracer.Len()), "retained-events")
	}
}

// BenchmarkMulticastThroughputCausalObsOff is the nil-tracer fast
// path; it should be indistinguishable from
// BenchmarkMulticastThroughputCausal.
func BenchmarkMulticastThroughputCausalObsOff(b *testing.B) {
	benchThroughputObs(b, nil)
}

// BenchmarkMulticastThroughputCausalObs1pct is the always-on
// configuration: 1% head-sampled lifecycles in a bounded ring.
func BenchmarkMulticastThroughputCausalObs1pct(b *testing.B) {
	benchThroughputObs(b, obs.NewSampledTracer(obs.SampleConfig{Rate: 0.01, Seed: 1}))
}

// BenchmarkMulticastThroughputCausalObs100pct records every lifecycle
// (still ring-bounded); the worst case the sampler can cost.
func BenchmarkMulticastThroughputCausalObs100pct(b *testing.B) {
	benchThroughputObs(b, obs.NewSampledTracer(obs.SampleConfig{Rate: 1, Seed: 1}))
}

// TestObsSamplingBudget asserts the acceptance budget: 1% sampling
// within 5% of tracing off on MulticastThroughputCausal. Each round
// runs the two arms back to back and yields one paired overhead ratio;
// the median over rounds is compared against the budget. Pairing makes
// rounds self-normalizing under drifting machine load (both arms of a
// round see the same conditions), and the median discards rounds where
// load shifted between the two halves. Wall-clock ratios are still
// noisy on shared machines — and a given binary can carry a few
// percent of code-placement/branch-predictor bias that no number of
// rounds averages away — so the check is opt-in; the recorded
// BENCH_<n>.json numbers are the durable evidence.
func TestObsSamplingBudget(t *testing.T) {
	if os.Getenv("OBS_BUDGET_CHECK") == "" {
		t.Skip("timing assertion; set OBS_BUDGET_CHECK=1 to run")
	}
	// Many short rounds beat few long ones: each is one more paired
	// sample for the median to draw on.
	if err := flag.Set("test.benchtime", "300000x"); err != nil {
		t.Fatalf("set benchtime: %v", err)
	}
	testing.Benchmark(BenchmarkMulticastThroughputCausalObsOff) // warmup, discarded
	var ratios []float64
	for round := 0; round < 8; round++ {
		off := float64(testing.Benchmark(BenchmarkMulticastThroughputCausalObsOff).NsPerOp())
		one := float64(testing.Benchmark(BenchmarkMulticastThroughputCausalObs1pct).NsPerOp())
		if off <= 0 {
			t.Fatalf("degenerate baseline: %v ns/op", off)
		}
		ratios = append(ratios, one/off)
		t.Logf("round %d: off=%.0f ns/op sampled1pct=%.0f ns/op ratio=%.4f", round, off, one, one/off)
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (median + ratios[len(ratios)/2-1]) / 2
	}
	overhead := (median - 1) * 100
	t.Logf("median overhead=%.2f%% over %d paired rounds", overhead, len(ratios))
	if overhead >= 5 {
		t.Fatalf("1%% sampled tracing costs %.2f%% over disabled; budget is <5%%", overhead)
	}
}
