package catocs

import (
	"sync"
	"testing"
	"time"
)

func TestFacadeSimulationQuickstart(t *testing.T) {
	sim := NewSimulation(42, LinkConfig{BaseDelay: 2 * time.Millisecond})
	nodes := []NodeID{0, 1, 2}
	var mu sync.Mutex
	got := map[ProcessID][]any{}
	members := NewGroup(sim.Mux, nodes, GroupConfig{Group: "demo", Ordering: Causal},
		func(rank ProcessID) DeliverFunc {
			return func(d Delivered) {
				mu.Lock()
				got[rank] = append(got[rank], d.Payload)
				mu.Unlock()
			}
		})
	members[0].Multicast("hello", 5)
	sim.Run()
	for r := ProcessID(0); r < 3; r++ {
		if len(got[r]) != 1 || got[r][0] != "hello" {
			t.Fatalf("rank %d got %v", r, got[r])
		}
	}
}

func TestFacadeLiveNetGroup(t *testing.T) {
	// The same protocol code on real goroutines: a causal group over
	// LiveNet with reactive traffic must preserve happens-before.
	net := NewLiveNet(LinkConfig{Jitter: 2 * time.Millisecond}, 1)
	defer net.Close()
	nodes := []NodeID{0, 1, 2}
	var mu sync.Mutex
	orders := map[ProcessID][]any{}
	done := make(chan struct{}, 16)
	var members []*Member
	members = NewGroup(net, nodes, GroupConfig{Group: "live", Ordering: Causal},
		func(rank ProcessID) DeliverFunc {
			return func(d Delivered) {
				mu.Lock()
				orders[rank] = append(orders[rank], d.Payload)
				mu.Unlock()
				if rank == 1 && d.Payload == "m1" {
					members[1].Multicast("m2", 2)
				}
				done <- struct{}{}
			}
		})
	members[0].Multicast("m1", 2)
	// Expect 6 deliveries total (2 messages x 3 members).
	deadline := time.After(5 * time.Second)
	for i := 0; i < 6; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("timed out waiting for live deliveries")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for r, o := range orders {
		if len(o) != 2 || o[0] != "m1" || o[1] != "m2" {
			t.Fatalf("rank %d violated causal order on live net: %v", r, o)
		}
	}
}

func TestFacadeStateToolkit(t *testing.T) {
	s := NewStore()
	v := s.Put("x", 1)
	if v.Seq != 1 {
		t.Fatal("store version")
	}
	r := NewReorderer()
	if out := r.Submit(1, "a"); len(out) != 1 {
		t.Fatal("reorderer")
	}
	c := NewCache()
	if n := c.Apply(CacheUpdate{Object: "o", Version: 1, Value: 1}); n != 1 {
		t.Fatal("cache")
	}
	if NewVC(3).Len() != 3 {
		t.Fatal("vc")
	}
}

func TestFacadeMonitorViewChange(t *testing.T) {
	sim := NewSimulation(7, LinkConfig{BaseDelay: time.Millisecond})
	nodes := []NodeID{0, 1, 2}
	members := NewGroup(sim.Mux, nodes, GroupConfig{Group: "g", Ordering: Causal, Atomic: true},
		func(ProcessID) DeliverFunc { return nil })
	monitors := make([]*Monitor, 3)
	for i, m := range members {
		monitors[i] = NewMonitor(sim.Mux, m, "g", MonitorConfig{})
		monitors[i].Start()
	}
	sim.Kernel.At(50*time.Millisecond, func() {
		sim.Net.Crash(2)
		monitors[2].Stop()
		members[2].Close()
	})
	sim.RunUntil(time.Second)
	if members[0].Epoch() != 1 || members[0].GroupSize() != 2 {
		t.Fatalf("view change failed: epoch=%d size=%d", members[0].Epoch(), members[0].GroupSize())
	}
	for i := range monitors {
		monitors[i].Stop()
		members[i].Close()
	}
}
