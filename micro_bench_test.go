package catocs

// Micro-benchmarks of the per-message machinery §3.4 charges CATOCS
// with: "ordering information is added each transmission and checked
// on each reception. This overhead will be an increasingly significant
// cost as networks go to ever higher transfer rates." These quantify
// the per-operation cost of the clocks and buffers at several group
// sizes.

import (
	"fmt"
	"testing"
	"time"

	"catocs/internal/multicast"
	"catocs/internal/stability"
	"catocs/internal/state"
	"catocs/internal/vclock"
	"catocs/internal/wire"
)

func benchSizes() []int { return []int{4, 16, 64, 256} }

func BenchmarkVCCompare(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := vclock.New(n), vclock.New(n)
			for i := 0; i < n; i++ {
				x.Set(vclock.ProcessID(i), uint64(i))
				y.Set(vclock.ProcessID(i), uint64(i%3))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = x.Compare(y)
			}
		})
	}
}

func BenchmarkVCDeliverableCheck(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recv := vclock.New(n)
			msg := recv.Clone()
			msg.Set(0, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = recv.Deliverable(msg, 0)
			}
		})
	}
}

func BenchmarkVCMerge(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := vclock.New(n), vclock.New(n)
			for i := 0; i < n; i++ {
				y.Set(vclock.ProcessID(i), uint64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Merge(y)
			}
		})
	}
}

func BenchmarkVCStampClone(b *testing.B) {
	// The per-send cost: clone the delivered clock to stamp a message.
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			v := vclock.New(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = v.Clone()
			}
		})
	}
}

// The delta-clock family: the per-message work the sparse wire
// encoding replaces the O(N) clock scan and copy with. A cast touches
// its own component plus however many concurrent writers advanced, so
// the deltas here carry two entries regardless of n.
func BenchmarkVCDeltaDiffFrom(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prev, cur := vclock.New(n), vclock.New(n)
			for i := 0; i < n; i++ {
				prev.Set(vclock.ProcessID(i), uint64(i))
				cur.Set(vclock.ProcessID(i), uint64(i))
			}
			cur.Set(0, 100)
			cur.Set(vclock.ProcessID(n-1), 200)
			dst := make([]vclock.DeltaEntry, 0, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = cur.DiffFrom(prev, dst[:0])
			}
		})
	}
}

func BenchmarkVCDeltaApply(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			v := vclock.New(n)
			delta := []vclock.DeltaEntry{{Idx: 0, Val: 7}, {Idx: int32(n - 1), Val: 9}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = v.ApplyDelta(delta)
			}
		})
	}
}

func BenchmarkVCDeltaDeliverableCheck(b *testing.B) {
	// The sparse counterpart of BenchmarkVCDeliverableCheck: O(delta)
	// instead of O(n), so the n=256 row should look like the n=4 row.
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recv := vclock.New(n)
			delta := []vclock.DeltaEntry{{Idx: 0, Val: 1}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = recv.DeliverableDelta(0, 1, delta)
			}
		})
	}
}

// BenchmarkWireEncodeDataMsg measures the append-style encode of a
// stamped data message into a reused buffer — the tcpnet send path.
// The acceptance bar is 0 allocs/op: all growth happens on the first
// iteration and the buffer is recycled thereafter.
func BenchmarkWireEncodeDataMsg(b *testing.B) {
	for _, n := range []int{4, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			msg := &multicast.DataMsg{
				Group:       "bench",
				Epoch:       3,
				Sender:      1,
				Seq:         42,
				VC:          vclock.New(n),
				SentAt:      5 * time.Millisecond,
				PayloadSize: 64,
			}
			msg.VC.Set(1, 42)
			buf := make([]byte, 0, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, out, err := wire.MarshalAppend(buf[:0], msg)
				if err != nil {
					b.Fatal(err)
				}
				buf = out[:0]
			}
		})
	}
}

func BenchmarkStabilityObserveAck(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := stability.New(n)
			for s := 0; s < n; s++ {
				for q := uint64(1); q <= 4; q++ {
					tr.Buffer(stability.Key{Sender: vclock.ProcessID(s), Seq: q}, q, 64)
				}
			}
			ack := vclock.New(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.ObserveAck(vclock.ProcessID(i%n), ack)
			}
		})
	}
}

func BenchmarkMatrixMinClock(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := vclock.NewMatrix(n)
			for i := 0; i < n; i++ {
				v := vclock.New(n)
				v.Set(vclock.ProcessID(i), uint64(i))
				m.Update(vclock.ProcessID(i), v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.MinClock()
			}
		})
	}
}

func BenchmarkStateReorderer(b *testing.B) {
	// The state-level alternative's per-message cost, for contrast:
	// one map insert and a drain check.
	r := state.NewReorderer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Submit(uint64(i+1), i)
	}
}

func BenchmarkStateCacheApply(b *testing.B) {
	c := state.NewCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Apply(state.Update{Object: "obj", Version: uint64(i + 1), Value: i})
	}
}

func BenchmarkStoreVersionedPut(b *testing.B) {
	s := state.NewStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put("key", i)
	}
}
