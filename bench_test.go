package catocs

// Benchmark harness: one testing.B benchmark per experiment (E1–E12)
// plus the ablations, regenerating the EXPERIMENTS.md measurements.
// Each benchmark runs its experiment's core simulation per iteration
// and reports the experiment's headline quantity as a custom metric,
// so `go test -bench=. -benchmem` reproduces both the cost of the
// simulation and the shape of the result.

import (
	"fmt"
	"testing"
	"time"

	"catocs/internal/apps/drilling"
	"catocs/internal/apps/firealarm"
	"catocs/internal/apps/netnews"
	"catocs/internal/apps/sfc"
	"catocs/internal/apps/trading"
	"catocs/internal/experiments"
	"catocs/internal/multicast"
)

func BenchmarkE1CausalDelivery(b *testing.B) {
	held := 0
	for i := 0; i < b.N; i++ {
		r := experiments.RunE1(int64(i + 1))
		if r.CausalOrderHeld {
			held++
		}
	}
	b.ReportMetric(float64(held)/float64(b.N), "causal-order-held")
}

func BenchmarkE2HiddenChannel(b *testing.B) {
	anomalies := 0
	for i := 0; i < b.N; i++ {
		cfg := sfc.DefaultConfig()
		cfg.Seed = int64(i + 1)
		cfg.Jitter = 8 * time.Millisecond
		r := sfc.Run(cfg)
		if r.AnomalyRaw {
			anomalies++
		}
		if r.AnomalyVersioned {
			b.Fatal("versioned observer misled")
		}
	}
	b.ReportMetric(float64(anomalies)/float64(b.N), "raw-anomaly-rate")
}

func BenchmarkE3ExternalChannel(b *testing.B) {
	anomalies := 0
	for i := 0; i < b.N; i++ {
		cfg := firealarm.DefaultConfig()
		cfg.Seed = int64(i + 1)
		r := firealarm.Run(cfg)
		if r.AnomalyRaw {
			anomalies++
		}
		if r.AnomalyTemporal {
			b.Fatal("temporal observer misled")
		}
	}
	b.ReportMetric(float64(anomalies)/float64(b.N), "raw-anomaly-rate")
}

func BenchmarkE4TradingAnomaly(b *testing.B) {
	crossings := 0
	for i := 0; i < b.N; i++ {
		cfg := trading.DefaultConfig()
		cfg.Seed = int64(i + 1)
		r := trading.Run(cfg)
		crossings += r.RawFalseCrossings
		if r.CacheFalseCrossings != 0 {
			b.Fatal("dependency display crossed")
		}
	}
	b.ReportMetric(float64(crossings)/float64(b.N), "false-crossings/run")
}

func BenchmarkE5FalseCausality(b *testing.B) {
	var gapMs float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE5(12, 20, 5*time.Millisecond, 8*time.Millisecond, int64(i+1))
		gapMs = (pt.Mean[multicast.Causal] - pt.Mean[multicast.FIFO]) * 1000
	}
	b.ReportMetric(gapMs, "causal-fifo-gap-ms")
}

func BenchmarkE6BufferGrowth(b *testing.B) {
	var perNode float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE6(12, 25, 5*time.Millisecond, 0.05, int64(i+1))
		perNode = float64(pt.PeakBufPerNode)
	}
	b.ReportMetric(perNode, "peak-buf-per-node")
}

func BenchmarkE7ViewChange(b *testing.B) {
	var flush float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE7(8, int64(i+1))
		flush = float64(pt.FlushMsgs)
	}
	b.ReportMetric(flush, "flush-msgs")
}

func BenchmarkE8Deadlock(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE8(6, 80, 25*time.Millisecond, int64(i+1))
		if !pt.VRDetected || !pt.STDetected {
			b.Fatal("detector missed the deadlock")
		}
		ratio = float64(pt.VRMsgs) / float64(pt.STMsgs)
	}
	b.ReportMetric(ratio, "vr/st-msg-ratio")
}

func BenchmarkE9Replication(b *testing.B) {
	var lost float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE9Catocs(3, 20, 0, true, int64(i+1))
		lost = float64(pt.LostUpdates)
		tx := experiments.RunE9Tx(3, 20, 4, int64(i+1))
		if tx.Committed != 20 {
			b.Fatalf("tx commits = %d", tx.Committed)
		}
	}
	b.ReportMetric(lost, "k0-lost-updates")
}

func BenchmarkE10Drilling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := drilling.Config{
			Seed: int64(i + 1), Holes: 24, Drillers: 6,
			DrillTime: 10 * time.Millisecond, CrashDriller: -1,
		}
		central := drilling.RunCentral(cfg)
		catocs := drilling.RunCatocs(cfg)
		if central.DoubleDrilled+catocs.DoubleDrilled != 0 {
			b.Fatal("double drill")
		}
		ratio = float64(catocs.DataMsgs) / float64(central.DataMsgs)
	}
	b.ReportMetric(ratio, "catocs/central-msg-ratio")
}

func BenchmarkE11Netnews(b *testing.B) {
	var collateralMs float64
	for i := 0; i < b.N; i++ {
		cfg := netnews.DefaultConfig()
		cfg.Seed = int64(i + 1)
		rs := netnews.RunState(cfg)
		rc := netnews.RunCatocs(cfg)
		collateralMs = (rc.UnrelatedLatency.Mean() - rs.UnrelatedLatency.Mean()) * 1000
	}
	b.ReportMetric(collateralMs, "catocs-collateral-delay-ms")
}

func BenchmarkE12Realtime(b *testing.B) {
	var extraStale float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE12(0.1, int64(i+1))
		extraStale = pt.CatocsStaleMs - pt.StateStaleMs
	}
	b.ReportMetric(extraStale, "catocs-extra-staleness-ms")
}

func BenchmarkE13Durability(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE13(8, 30, int64(i+1))
		if !pt.RecoveredOK {
			b.Fatal("recovery failed")
		}
		ratio = float64(pt.CommBytes) / float64(pt.StateBytes)
	}
	b.ReportMetric(ratio, "comm/state-log-bytes")
}

func BenchmarkE14NameService(b *testing.B) {
	var undos float64
	for i := 0; i < b.N; i++ {
		g := experiments.RunE14Gossip(8, 24, int64(i+1))
		if g.Diverged != 0 {
			b.Fatal("gossip diverged")
		}
		undos = float64(g.ConflictsResolved)
	}
	b.ReportMetric(undos, "lww-undos")
}

func BenchmarkE5HeaderOverhead(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE5Header(32, 15, 1_000_000, int64(i+1))
		pct = pt.OverheadPct
	}
	b.ReportMetric(pct, "header-overhead-pct")
}

func BenchmarkE7Join(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE7Join(8, int64(i+1))
		ms = pt.AdmissionMs
	}
	b.ReportMetric(ms, "admission-ms")
}

func BenchmarkE15CausalMemory(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sc, to := experiments.RunE15(8, 24, int64(i+1))
		ratio = float64(to.Msgs) / float64(sc.Msgs)
	}
	b.ReportMetric(ratio, "totalorder/stateclock-msgs")
}

func BenchmarkAblationTotalOrder(b *testing.B) {
	var agreeOverSeq float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunAblationTotal(8, 10, int64(i+1))
		agreeOverSeq = pt.AgreeMeanMs / pt.SeqMeanMs
	}
	b.ReportMetric(agreeOverSeq, "agree/seq-latency-ratio")
}

func BenchmarkAblationPartitioning(b *testing.B) {
	var totalBuf float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE6Partition(3, 4, 20, 0.05, int64(i+1))
		totalBuf = float64(pt.TotalPeakBuf)
	}
	b.ReportMetric(totalBuf, "chained-groups-total-buf")
}

func BenchmarkAblationPiggyback(b *testing.B) {
	var amp float64
	for i := 0; i < b.N; i++ {
		pt := experiments.RunE5Piggyback(12, 20, int64(i+1))
		amp = pt.AmplificationPct
	}
	b.ReportMetric(amp, "piggyback-amplification-pct")
}

func BenchmarkE20MGCast(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		pts := experiments.RunE20(16, []int{2}, 8, int64(i+1))
		var mg, big float64
		for _, pt := range pts {
			if pt.Violations != 0 {
				b.Fatalf("%s: %d ordering violations", pt.Substrate, pt.Violations)
			}
			switch pt.Substrate {
			case "mgcast":
				mg = pt.LatMean
			case "biggroup":
				big = pt.LatMean
			}
		}
		speedup = big / mg
	}
	b.ReportMetric(speedup, "biggroup/mgcast-latency-ratio")
}

// Micro-benchmarks of the protocol hot paths, for the §3.4 point that
// CATOCS "imposes overhead on every message transmission and
// reception".

func BenchmarkMulticastThroughputUnordered(b *testing.B) { benchThroughput(b, Unordered) }
func BenchmarkMulticastThroughputFIFO(b *testing.B)      { benchThroughput(b, FIFO) }
func BenchmarkMulticastThroughputCausal(b *testing.B)    { benchThroughput(b, Causal) }
func BenchmarkMulticastThroughputTotalSeq(b *testing.B)  { benchThroughput(b, TotalSeq) }

// Optimized-path variants: causal with delta clocks on the wire, and the
// sequencer ordering with batched ordering announcements.
func BenchmarkMulticastThroughputCausalDelta(b *testing.B) {
	benchThroughputCfg(b, GroupConfig{Group: "bench", Ordering: Causal, DeltaClocks: true})
}

func BenchmarkMulticastThroughputTotalSeqBatched(b *testing.B) {
	benchThroughputCfg(b, GroupConfig{Group: "bench", Ordering: TotalSeq, OrderBatch: 64})
}

func benchThroughput(b *testing.B, ord Ordering) {
	benchThroughputCfg(b, GroupConfig{Group: "bench", Ordering: ord})
}

func benchThroughputCfg(b *testing.B, cfg GroupConfig) {
	sim := NewSimulation(1, LinkConfig{BaseDelay: time.Millisecond})
	nodes := []NodeID{0, 1, 2, 3}
	delivered := 0
	members := NewGroup(sim.Mux, nodes, cfg,
		func(ProcessID) DeliverFunc {
			return func(Delivered) { delivered++ }
		})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		members[i%4].Multicast(i, 16)
		if i%256 == 255 {
			sim.Run() // drain periodically to bound queue growth
		}
	}
	sim.Run()
	b.ReportMetric(float64(delivered)/float64(b.N), "deliveries/msg")
}

// BenchmarkScalecastVsCBCAST runs the E16 head-to-head sweep as
// sub-benchmarks, reporting the headline per-packet control bytes as a
// metric and emitting one JSON line per (substrate, N) — the same
// records `scalebench -exp scalecast -json` produces.
func BenchmarkScalecastVsCBCAST(b *testing.B) {
	for _, substrate := range []string{"cbcast", "scalecast"} {
		for _, n := range []int{8, 32, 128} {
			substrate, n := substrate, n
			b.Run(fmt.Sprintf("%s/N=%d", substrate, n), func(b *testing.B) {
				var pt experiments.E16Point
				for i := 0; i < b.N; i++ {
					pt = experiments.RunE16(substrate, n, 4, int64(i+1))
				}
				b.ReportMetric(pt.CtrlBytesPerPkt, "ctrl-B/pkt")
				b.ReportMetric(pt.LatencyMean*1000, "mean-lat-ms")
				b.Logf("%s", pt.JSON())
			})
		}
	}
}
