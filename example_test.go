package catocs_test

// Runnable documentation examples for the public API. Each runs under
// `go test` with deterministic output — the simulation kernel makes
// distributed executions reproducible enough to assert byte-for-byte.

import (
	"fmt"
	"time"

	"catocs"
)

// A causal process group: the reply can never overtake the question.
func ExampleNewGroup() {
	sim := catocs.NewSimulation(42, catocs.LinkConfig{BaseDelay: 2 * time.Millisecond})
	nodes := []catocs.NodeID{0, 1, 2}
	var members []*catocs.Member
	members = catocs.NewGroup(sim.Mux, nodes,
		catocs.GroupConfig{Group: "demo", Ordering: catocs.Causal},
		func(rank catocs.ProcessID) catocs.DeliverFunc {
			return func(d catocs.Delivered) {
				if rank == 2 {
					fmt.Printf("member 2 delivered %v\n", d.Payload)
				}
				if rank == 1 && d.Payload == "question" {
					members[1].Multicast("answer", 6)
				}
			}
		})
	members[0].Multicast("question", 8)
	sim.Run()
	// Output:
	// member 2 delivered question
	// member 2 delivered answer
}

// Prescriptive ordering: the receiver restores order from state clocks,
// no ordered transport needed.
func ExampleNewReorderer() {
	r := catocs.NewReorderer()
	for _, v := range r.Submit(2, "second") {
		fmt.Println(v)
	}
	for _, v := range r.Submit(1, "first") {
		fmt.Println(v)
	}
	// Output:
	// first
	// second
}

// The order-preserving dependency cache: derived data is current only
// while its base has not advanced (the §4.1 trading check).
func ExampleNewCache() {
	c := catocs.NewCache()
	c.Apply(catocs.CacheUpdate{Object: "opt", Version: 1, Value: 25.5})
	c.Apply(catocs.CacheUpdate{Object: "theo", Version: 1, Value: 25.75,
		Deps: []catocs.Version{{Object: "opt", Seq: 1}}})
	fmt.Println("theo current:", c.Current("theo"))
	c.Apply(catocs.CacheUpdate{Object: "opt", Version: 2, Value: 26.0})
	fmt.Println("theo current after base tick:", c.Current("theo"))
	// Output:
	// theo current: true
	// theo current after base tick: false
}

// Two-phase commit: any participant can refuse, and the group aborts
// together — the capability ordered delivery lacks.
func ExampleNewTxCoordinator() {
	sim := catocs.NewSimulation(1, catocs.LinkConfig{BaseDelay: time.Millisecond})
	coord := catocs.NewTxCoordinator(sim.Net, 100)
	catocs.NewTxParticipant(sim.Net, 1, catocs.NewStore())
	p2 := catocs.NewTxParticipant(sim.Net, 2, catocs.NewStore())
	p2.Refuse = func(catocs.TxID, []catocs.TxWrite) bool { return true } // out of space
	coord.Run(map[catocs.NodeID][]catocs.TxWrite{
		1: {{Key: "k", Value: 1}},
		2: {{Key: "k", Value: 1}},
	}, func(o catocs.TxOutcome) {
		fmt.Printf("committed=%v refusals=%d\n", o.Committed, o.VotesNo)
	})
	sim.Run()
	// Output:
	// committed=false refusals=1
}

// The wait-for graph detects a distributed deadlock from merged
// periodic reports — no causal multicast anywhere.
func ExampleNewDeadlockMonitor() {
	mon := catocs.NewDeadlockMonitor()
	a15 := catocs.Instance{Proc: "A", ID: 15}
	b37 := catocs.Instance{Proc: "B", ID: 37}
	mon.Observe(catocs.WaitReport{Proc: "A", Seq: 1,
		Edges: []catocs.WaitEdge{{From: a15, To: b37}}})
	mon.Observe(catocs.WaitReport{Proc: "B", Seq: 1,
		Edges: []catocs.WaitEdge{{From: b37, To: a15}}})
	fmt.Println(mon.Deadlock())
	// Output:
	// [A15 B37]
}
